"""Synthetic weather: hourly plane-of-array irradiance for a simulated year.

Pipeline per simulated day:

1. draw a daily clearness index ``KT`` from the location's monthly mean with
   AR(1) day-to-day variability (weather persistence creates the multi-day
   dark spells that actually threaten an off-grid battery),
2. distribute the daily global horizontal irradiation over the daylight hours
   proportionally to extraterrestrial irradiance,
3. split global into beam and diffuse with the Erbs correlation,
4. transpose onto the module plane: geometric beam ratio + isotropic diffuse +
   ground reflection.

Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels import ar1_scan
from repro.solar.climates import WINTER_MONTHS, Location, months_of_days
from repro.solar.geometry import SOLAR_CONSTANT_W_M2, SolarGeometry, eccentricity_factor

__all__ = ["WeatherParams", "DayIrradiance", "WeatherYear", "SyntheticWeather",
           "erbs_diffuse_fraction"]


def erbs_diffuse_fraction(kt) -> np.ndarray | float:
    """Diffuse fraction of global irradiance (Erbs et al. correlation)."""
    k = np.asarray(kt, dtype=float)
    low = 1.0 - 0.09 * k
    mid = (0.9511 - 0.1604 * k + 4.388 * k**2 - 16.638 * k**3 + 12.336 * k**4)
    out = np.where(k <= 0.22, low, np.where(k <= 0.80, mid, 0.165))
    return float(out) if np.ndim(kt) == 0 else out


@dataclass(frozen=True)
class WeatherParams:
    """Tuning of the synthetic weather generator.

    ``sigma_kt`` and ``rho`` control day-to-day clearness variability and
    persistence; both were calibrated against the paper's Table IV outcome
    (DESIGN.md section 3).  ``albedo`` is the ground reflectance used for the
    reflected irradiance on the vertical module.
    """

    sigma_kt: float = 0.13
    rho: float = 0.60
    kt_min: float = 0.05
    kt_max: float = 0.78
    albedo: float = 0.20

    def __post_init__(self) -> None:
        if not 0.0 <= self.sigma_kt < 0.5:
            raise ConfigurationError(f"sigma_kt must be in [0, 0.5), got {self.sigma_kt}")
        if not 0.0 <= self.rho < 1.0:
            raise ConfigurationError(f"rho must be in [0, 1), got {self.rho}")
        if not 0.0 < self.kt_min < self.kt_max <= 1.0:
            raise ConfigurationError(
                f"need 0 < kt_min < kt_max <= 1, got {self.kt_min}, {self.kt_max}")
        if not 0.0 <= self.albedo <= 1.0:
            raise ConfigurationError(f"albedo must be in [0, 1], got {self.albedo}")


@dataclass(frozen=True)
class DayIrradiance:
    """Hourly irradiance of one simulated day.

    ``poa_w_m2`` is the plane-of-array irradiance on the module; ``ghi_w_m2``
    the global horizontal; both are 24-vectors of hourly means [W/m²].
    """

    day_of_year: int
    kt: float
    ghi_w_m2: np.ndarray
    poa_w_m2: np.ndarray

    @property
    def daily_ghi_wh_m2(self) -> float:
        return float(np.sum(self.ghi_w_m2))

    @property
    def daily_poa_wh_m2(self) -> float:
        return float(np.sum(self.poa_w_m2))


@dataclass(frozen=True)
class WeatherYear:
    """A full synthesized weather year as day-axis tensors.

    The tensor twin of iterating :meth:`SyntheticWeather.year`: row ``i``
    holds the same 24 hourly values as the ``i``-th :class:`DayIrradiance`
    (bit-identical; asserted in the test suite).  This is the shape the
    batched off-grid engine (:mod:`repro.solar.batch`) consumes and caches.
    """

    start_day_of_year: int
    #: Day-of-year (1..365) of each simulated day, shape ``(days,)``.
    day_of_year: np.ndarray
    #: Month index (0..11) of each simulated day, shape ``(days,)``.
    month: np.ndarray
    #: Daily clearness index, shape ``(days,)``.
    kt: np.ndarray
    #: Hourly global horizontal irradiance [W/m²], shape ``(days, 24)``.
    ghi_w_m2: np.ndarray
    #: Hourly plane-of-array irradiance [W/m²], shape ``(days, 24)``.
    poa_w_m2: np.ndarray

    @property
    def days(self) -> int:
        return int(self.day_of_year.shape[0])

    @property
    def daily_poa_wh_m2(self) -> np.ndarray:
        """Per-day plane-of-array irradiation [Wh/m²], shape ``(days,)``."""
        return np.sum(self.poa_w_m2, axis=1)

    def monthly_poa_kwh_m2(self) -> np.ndarray:
        """Monthly plane-of-array irradiation sums [kWh/m²], shape ``(12,)``."""
        sums = np.zeros(12)
        np.add.at(sums, self.month, self.daily_poa_wh_m2 / 1000.0)
        return sums


@dataclass
class SyntheticWeather:
    """Deterministic (seeded) synthetic weather for one location and module.

    When ``params`` is omitted, the variability parameters come from the
    location's calibrated weather character.
    """

    location: Location
    geometry: SolarGeometry | None = None
    params: WeatherParams | None = None
    seed: int = 2022

    def __post_init__(self) -> None:
        if self.geometry is None:
            self.geometry = SolarGeometry(self.location.latitude_deg)
        if self.params is None:
            self.params = WeatherParams(
                sigma_kt=self.location.sigma_kt,
                rho=self.location.rho,
                kt_min=self.location.kt_min,
            )

    # -- daily clearness series ----------------------------------------------

    def daily_clearness(self, days: int = 365, start_day_of_year: int = 1,
                        backend: str | None = None) -> np.ndarray:
        """AR(1) daily clearness-index series around the monthly means.

        Vectorized over the day axis: the whole normal vector is drawn up
        front (one generator call yields the same stream as per-day draws),
        the monthly means come from the precomputed DOY→month lookup, and
        the AR(1) recursion runs through the shared
        :func:`repro.kernels.ar1_scan` kernel — a zero-initialized series
        is the same recurrence with the innovation scale on the first
        sample.  ``backend="reference"`` reproduces the historical step
        loop bit-for-bit; the fused default matches it within 1e-9 (well
        inside the golden-snapshot tolerance).
        """
        rng = np.random.default_rng(self.seed)
        p = self.params
        doys = (start_day_of_year - 1 + np.arange(days)) % 365 + 1
        means = self.location.monthly_clearness_table()[months_of_days(doys)]
        innovation = np.sqrt(max(1e-12, 1.0 - p.rho**2))
        steps = max(days - 1, 1)
        z = ar1_scan(rng.standard_normal(days), np.full(steps, p.rho),
                     np.full(steps, innovation), innovation, backend=backend)
        return np.clip(means + p.sigma_kt * z, p.kt_min, p.kt_max)

    # -- hourly synthesis ------------------------------------------------------

    def day_irradiance(self, day_of_year: int, kt: float) -> DayIrradiance:
        """Hourly GHI and plane-of-array irradiance for one day."""
        if not 1 <= day_of_year <= 365:
            raise ConfigurationError(f"day-of-year must be 1..365, got {day_of_year}")
        geo = self.geometry
        hours = np.arange(24) + 0.5  # hour centers, solar time
        w = geo.hour_angles_rad(hours)
        cos_z = np.maximum(geo.cos_zenith(day_of_year, w), 0.0)

        # Hourly extraterrestrial on horizontal, then scale by daily KT.
        i0 = SOLAR_CONSTANT_W_M2 * eccentricity_factor(day_of_year) * cos_z
        ghi = kt * i0

        fd = erbs_diffuse_fraction(kt)
        diffuse = fd * ghi
        beam_h = ghi - diffuse

        cos_i = geo.cos_incidence(day_of_year, w)
        # Beam ratio guarded against the sunrise/sunset singularity.
        rb = np.where(cos_z > 0.087, np.maximum(cos_i, 0.0) / np.maximum(cos_z, 0.087), 0.0)
        beta = np.deg2rad(geo.tilt_deg)
        sky_view = (1.0 + np.cos(beta)) / 2.0
        ground_view = (1.0 - np.cos(beta)) / 2.0
        poa = beam_h * rb + diffuse * sky_view + ghi * self.params.albedo * ground_view

        month = self.location.month_of_day(day_of_year)
        if self.location.is_winter(month):
            poa = poa * (1.0 - self.location.winter_reliability_derate)

        return DayIrradiance(day_of_year=day_of_year, kt=float(kt),
                             ghi_w_m2=ghi, poa_w_m2=np.maximum(poa, 0.0))

    def year(self, days: int = 365, start_day_of_year: int = 1):
        """Yield a :class:`DayIrradiance` for each simulated day.

        ``start_day_of_year`` shifts the simulation phase; starting in autumn
        (e.g. 274 = Oct 1) places one *continuous* winter mid-simulation,
        which is the correct stress test for battery autonomy (a Jan-Dec year
        splits the winter across the two ends and starts it with a full
        battery).
        """
        if not 1 <= start_day_of_year <= 365:
            raise ConfigurationError(
                f"start day-of-year must be 1..365, got {start_day_of_year}")
        kts = self.daily_clearness(days, start_day_of_year)
        for i in range(days):
            doy = (start_day_of_year - 1 + i) % 365 + 1
            yield self.day_irradiance(doy, float(kts[i]))

    def year_tensor(self, days: int = 365, start_day_of_year: int = 1) -> WeatherYear:
        """Synthesize the whole year as one ``(days, 24)`` tensor.

        Bit-identical to stacking :meth:`year`'s per-day outputs, but computed
        in a single pass over the day axis: the solar-geometry broadcasts put
        the day dimension on the rows and the 24 hour centers on the columns.
        """
        if not 1 <= start_day_of_year <= 365:
            raise ConfigurationError(
                f"start day-of-year must be 1..365, got {start_day_of_year}")
        if days <= 0:
            raise ConfigurationError(f"days must be positive, got {days}")
        geo = self.geometry
        kt = self.daily_clearness(days, start_day_of_year)
        doys = (start_day_of_year - 1 + np.arange(days)) % 365 + 1
        months = months_of_days(doys)

        hours = np.arange(24) + 0.5  # hour centers, solar time
        w = geo.hour_angles_rad(hours)
        doy_col = doys[:, None]
        cos_z = np.maximum(geo.cos_zenith(doy_col, w), 0.0)

        i0 = SOLAR_CONSTANT_W_M2 * eccentricity_factor(doy_col) * cos_z
        ghi = kt[:, None] * i0

        fd = erbs_diffuse_fraction(kt)
        diffuse = fd[:, None] * ghi
        beam_h = ghi - diffuse

        cos_i = geo.cos_incidence(doy_col, w)
        rb = np.where(cos_z > 0.087, np.maximum(cos_i, 0.0) / np.maximum(cos_z, 0.087), 0.0)
        beta = np.deg2rad(geo.tilt_deg)
        sky_view = (1.0 + np.cos(beta)) / 2.0
        ground_view = (1.0 - np.cos(beta)) / 2.0
        poa = beam_h * rb + diffuse * sky_view + ghi * self.params.albedo * ground_view

        winter = np.isin(months, WINTER_MONTHS)
        poa[winter] = poa[winter] * (1.0 - self.location.winter_reliability_derate)

        return WeatherYear(start_day_of_year=start_day_of_year,
                           day_of_year=doys, month=months, kt=kt,
                           ghi_w_m2=ghi, poa_w_m2=np.maximum(poa, 0.0))

    def monthly_poa_kwh_m2(self) -> np.ndarray:
        """Monthly plane-of-array irradiation sums of the simulated year.

        Reuses one :meth:`year_tensor` synthesis instead of re-yielding
        per-day objects (this used to be a second full weather synthesis per
        calibration pass).
        """
        return self.year_tensor().monthly_poa_kwh_m2()

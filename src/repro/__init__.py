"""repro — reproduction of "Increasing Cellular Network Energy Efficiency for
Railway Corridors" (Schumacher, Merz, Burg — DATE 2022).

The package models a railway cellular corridor: high-power RRH masts providing
a linear 5G NR cell, low-power out-of-band repeater nodes extending the
inter-site distance, the traffic-driven sleep mode, and off-grid solar
powering of the repeaters — together with the analysis that reproduces every
table and figure of the paper (see DESIGN.md and EXPERIMENTS.md).

Quickstart::

    from repro import CorridorLayout, compute_snr_profile, segment_energy, OperatingMode

    layout = CorridorLayout.with_uniform_repeaters(isd_m=2400, n_repeaters=8)
    profile = compute_snr_profile(layout)
    energy = segment_energy(layout, OperatingMode.SLEEP)
    print(profile.min_snr_db, energy.w_per_km)
"""

from repro import constants
from repro.capacity import TruncatedShannonModel, peak_snr_threshold_db, throughput_profile
from repro.corridor import (
    CatenaryGrid,
    CorridorDeployment,
    CorridorLayout,
    donor_node_count,
    validate_layout,
)
from repro.energy import (
    EnergyParams,
    OperatingMode,
    compare_deployments,
    conventional_reference_w_per_km,
    fig4_rows,
    segment_energy,
)
from repro.optimize import (
    max_isd_for_n,
    optimize_placement,
    outage_matrix,
    outage_probability,
    robust_max_isd,
    sweep_max_isd,
)
from repro.power import (
    EarthPowerModel,
    HP_RRH_PROFILE,
    LP_REPEATER_PROFILE,
    PowerState,
    hp_site_power_w,
    repeater_prototype_bill,
)
from repro.radio import (
    LinkParams,
    NrCarrier,
    RepeaterNoiseModel,
    compute_snr_profile,
    evaluate_scenarios,
    min_snr_batch,
)
from repro.radio.uplink import UplinkParams, compute_uplink_profile
from repro.scenario import ProfileCache, Scenario, ScenarioGrid
from repro.traffic import (
    TrafficParams,
    day_timetables,
    duty_cycle,
    generate_timetable,
)
from repro.simulation import CorridorSimulation, simulate_days
from repro.mobility import simulate_traversal
from repro.emf import node_compliance
from repro.economics import corridor_cost, retrofit_payback_years

__version__ = "1.0.0"

__all__ = [
    "constants",
    "CorridorLayout",
    "CorridorDeployment",
    "CatenaryGrid",
    "donor_node_count",
    "validate_layout",
    "LinkParams",
    "NrCarrier",
    "RepeaterNoiseModel",
    "compute_snr_profile",
    "evaluate_scenarios",
    "min_snr_batch",
    "Scenario",
    "ScenarioGrid",
    "ProfileCache",
    "TruncatedShannonModel",
    "peak_snr_threshold_db",
    "throughput_profile",
    "EarthPowerModel",
    "PowerState",
    "HP_RRH_PROFILE",
    "LP_REPEATER_PROFILE",
    "hp_site_power_w",
    "repeater_prototype_bill",
    "TrafficParams",
    "duty_cycle",
    "generate_timetable",
    "day_timetables",
    "CorridorSimulation",
    "simulate_days",
    "EnergyParams",
    "OperatingMode",
    "segment_energy",
    "fig4_rows",
    "conventional_reference_w_per_km",
    "compare_deployments",
    "max_isd_for_n",
    "sweep_max_isd",
    "optimize_placement",
    "outage_matrix",
    "outage_probability",
    "robust_max_isd",
    "UplinkParams",
    "compute_uplink_profile",
    "simulate_traversal",
    "node_compliance",
    "corridor_cost",
    "retrofit_payback_years",
    "__version__",
]

"""Deployment economics — the sustainability argument in currency.

The paper argues energy; an operator decides on total cost.  This package
prices the two deployments (conventional HP-only corridor vs. the
repeater-extended corridor) over a planning horizon: equipment and
installation CAPEX, energy and maintenance OPEX, and the payback period of
the repeater retrofit.
"""

from repro.economics.costmodel import (
    CostAssumptions,
    DeploymentCost,
    corridor_cost,
    retrofit_payback_years,
)

__all__ = [
    "CostAssumptions",
    "DeploymentCost",
    "corridor_cost",
    "retrofit_payback_years",
]

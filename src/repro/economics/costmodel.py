"""Cost model for corridor deployments.

Default prices are representative European figures (EUR), deliberately
conservative toward the conventional deployment; they are inputs, not
results — every experiment exposes them for sensitivity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corridor.deployment import CorridorDeployment
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode, segment_energy
from repro.errors import ConfigurationError

__all__ = ["CostAssumptions", "DeploymentCost", "corridor_cost", "retrofit_payback_years"]


@dataclass(frozen=True)
class CostAssumptions:
    """Unit costs of corridor equipment and operation [EUR]."""

    hp_site_capex: float = 120_000.0        # mast, 2 RRH, antennas, fiber tail
    repeater_capex: float = 8_000.0         # LP node incl. install on catenary mast
    donor_capex: float = 10_000.0           # donor node at the HP mast
    pv_system_capex: float = 2_500.0        # modules + battery + controller
    fiber_capex_per_km: float = 30_000.0    # trenching/fiber along the corridor
    energy_price_per_kwh: float = 0.25
    hp_maintenance_per_year: float = 3_000.0   # per HP site
    lp_maintenance_per_year: float = 200.0     # per LP node
    onboard_relay_capex: float = 25_000.0      # relay unit installed in a wagon
    discount_rate: float = 0.0                 # simple totals by default

    def __post_init__(self) -> None:
        for name in ("hp_site_capex", "repeater_capex", "donor_capex",
                     "pv_system_capex", "fiber_capex_per_km",
                     "energy_price_per_kwh", "hp_maintenance_per_year",
                     "lp_maintenance_per_year", "onboard_relay_capex"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if not 0.0 <= self.discount_rate < 1.0:
            raise ConfigurationError(
                f"discount rate must be in [0, 1), got {self.discount_rate}")


@dataclass(frozen=True)
class DeploymentCost:
    """Cost breakdown of one corridor deployment over a horizon."""

    corridor_km: float
    horizon_years: float
    capex: float
    energy_opex: float
    maintenance_opex: float

    @property
    def opex(self) -> float:
        return self.energy_opex + self.maintenance_opex

    @property
    def total(self) -> float:
        return self.capex + self.opex

    @property
    def per_km_per_year(self) -> float:
        return self.total / self.corridor_km / self.horizon_years


def _discounted_yearly(amount_per_year: float, years: float, rate: float) -> float:
    """Sum of a constant yearly amount, optionally discounted."""
    if rate == 0.0:
        return amount_per_year * years
    whole = int(years)
    total = sum(amount_per_year / (1.0 + rate) ** (y + 1) for y in range(whole))
    total += (years - whole) * amount_per_year / (1.0 + rate) ** (whole + 1)
    return total


def corridor_cost(deployment: CorridorDeployment,
                  mode: OperatingMode = OperatingMode.SLEEP,
                  corridor_km: float = 100.0,
                  horizon_years: float = 10.0,
                  assumptions: CostAssumptions | None = None,
                  energy_params: EnergyParams | None = None,
                  solar_powered_lp: bool | None = None) -> DeploymentCost:
    """Total cost of a corridor deployment over a planning horizon.

    ``solar_powered_lp`` defaults from the operating mode: SOLAR buys PV
    systems instead of paying LP mains energy.
    """
    if corridor_km <= 0 or horizon_years <= 0:
        raise ConfigurationError("corridor length and horizon must be positive")
    assumptions = assumptions or CostAssumptions()
    solar = mode is OperatingMode.SOLAR if solar_powered_lp is None else solar_powered_lp

    n_segments = deployment.segments_for_length(corridor_km)
    layout = deployment.layout
    n_service = n_segments * layout.n_repeaters
    n_donor = n_segments * layout.n_donor_nodes

    capex = (n_segments * assumptions.hp_site_capex
             + n_service * assumptions.repeater_capex
             + n_donor * assumptions.donor_capex
             + corridor_km * assumptions.fiber_capex_per_km)
    if solar:
        capex += (n_service + n_donor) * assumptions.pv_system_capex

    energy = segment_energy(layout, mode, energy_params)
    kwh_per_year = energy.w_per_km * corridor_km * 24 * 365 / 1000.0
    energy_opex = _discounted_yearly(kwh_per_year * assumptions.energy_price_per_kwh,
                                     horizon_years, assumptions.discount_rate)

    maintenance_per_year = (n_segments * assumptions.hp_maintenance_per_year
                            + (n_service + n_donor) * assumptions.lp_maintenance_per_year)
    maintenance_opex = _discounted_yearly(maintenance_per_year, horizon_years,
                                          assumptions.discount_rate)

    return DeploymentCost(corridor_km=corridor_km, horizon_years=horizon_years,
                          capex=capex, energy_opex=energy_opex,
                          maintenance_opex=maintenance_opex)


def retrofit_payback_years(proposed: CorridorDeployment,
                           mode: OperatingMode = OperatingMode.SLEEP,
                           corridor_km: float = 100.0,
                           assumptions: CostAssumptions | None = None,
                           energy_params: EnergyParams | None = None,
                           max_years: float = 100.0) -> float:
    """Years until the repeater deployment's savings repay its extra CAPEX.

    Compares against the conventional corridor; both sides pay their own
    maintenance and energy.  Returns ``inf`` when the proposal never pays
    back within ``max_years`` (e.g. when it costs more to run).
    """
    assumptions = assumptions or CostAssumptions()
    conventional = CorridorDeployment.conventional()

    def yearly_opex(dep: CorridorDeployment, m: OperatingMode) -> float:
        cost = corridor_cost(dep, m, corridor_km, 1.0, assumptions, energy_params)
        return cost.opex

    def capex(dep: CorridorDeployment, m: OperatingMode) -> float:
        return corridor_cost(dep, m, corridor_km, 1.0, assumptions, energy_params).capex

    extra_capex = capex(proposed, mode) - capex(conventional, OperatingMode.SLEEP)
    yearly_saving = (yearly_opex(conventional, OperatingMode.SLEEP)
                     - yearly_opex(proposed, mode))
    if extra_capex <= 0:
        return 0.0
    if yearly_saving <= 0:
        return float("inf")
    payback = extra_capex / yearly_saving
    return payback if payback <= max_years else float("inf")

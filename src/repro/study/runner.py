"""Sharded study execution: chunked cases, process pools, resumability.

:func:`run_study` turns a :class:`~repro.study.spec.StudySpec` into a merged
:class:`~repro.study.results.StudyTable`:

1. the case list (cartesian axis product) is split into ``shards`` contiguous
   chunks of near-equal size;
2. shards already present in the optional :class:`~repro.study.results.StudyStore`
   are reused (resume-from-partial);
3. the remaining shards run — inline for ``jobs=1``, otherwise on a
   :class:`~concurrent.futures.ProcessPoolExecutor` of ``jobs`` workers —
   with a ``[k/n]`` progress callback per completed shard;
4. completed shards persist to the store and merge, in case order, into the
   final table.

**CRN contract.**  A case's engine seed depends only on the study seed and
the case index (:meth:`~repro.study.spec.StudySpec.case_seed`); the stochastic
engines then seed their streams ``default_rng([seed, t])`` per trial /
realization.  Shard boundaries never enter the seeding path, so the merged
table is bit-identical for *any* shard count and job count — asserted in
``tests/test_study.py``.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.study.engines import run_cases
from repro.study.results import (
    ShardTable,
    StudyStore,
    StudyTable,
    build_table,
    merge_shards,
)
from repro.study.spec import StudySpec

__all__ = ["StudyRunReport", "run_study", "shard_ranges"]

#: Default upper bound on the shard count (kept independent of ``jobs`` so a
#: resumed run finds the same shard layout regardless of its parallelism).
DEFAULT_MAX_SHARDS = 16


def shard_ranges(case_count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``case_count`` cases into ``shards`` contiguous ``[start, stop)``
    ranges whose sizes differ by at most one.

    Args:
        case_count: Total number of cases.
        shards: Requested shard count (clamped to ``case_count``).

    Returns:
        The ordered, non-empty case ranges.
    """
    if case_count < 1:
        raise ConfigurationError(f"case_count must be >= 1, got {case_count}")
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    shards = min(shards, case_count)
    bounds = [round(i * case_count / shards) for i in range(shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(shards)]


def _run_shard(payload: tuple[StudySpec, int, int, dict]) -> tuple[int, ShardTable]:
    """Worker entry point: evaluate the ``[start, stop)`` case range.

    Module-level so it pickles into :class:`ProcessPoolExecutor` workers;
    regenerates the case list from the spec (cheap, deterministic) instead of
    shipping it, and relies on per-process engine caches
    (:mod:`repro.study.engines`) for shared state.
    """
    spec, start, stop, context = payload
    cases = spec.cases()[start:stop]
    seeds = [spec.case_seed(i) for i in range(start, stop)]
    rows = run_cases(spec.engine, cases, seeds, context=context)
    shard: ShardTable = {"case": list(range(start, stop))}
    if rows:
        for metric in rows[0]:
            shard[metric] = [row[metric] for row in rows]
    return start, shard


#: Context keys that are plain data and may cross a process boundary; live
#: cache objects (``profile_cache``, ``weather_cache``) stay inline-only.
_PICKLABLE_CONTEXT_KEYS = ("cache_dir", "jobs", "backend")


@dataclass(frozen=True)
class StudyRunReport:
    """A finished (or partial) study run: the merged table + provenance.

    ``partial`` is True when ``max_shards`` stopped the run before every
    shard was evaluated; re-running with the same store completes it.
    """

    spec: StudySpec
    table: StudyTable
    shards: int
    reused_shards: int
    computed_shards: int
    jobs: int

    @property
    def partial(self) -> bool:
        return self.reused_shards + self.computed_shards < self.shards

    def summary(self) -> str:
        """One-line run summary for logs and the CLI."""
        state = "partial" if self.partial else "complete"
        return (f"study {self.spec.name!r}: {len(self.table)}/"
                f"{self.spec.case_count} cases ({state}), "
                f"{self.shards} shards ({self.reused_shards} reused, "
                f"{self.computed_shards} computed), jobs={self.jobs}")


def run_study(spec: StudySpec,
              jobs: int = 1,
              shards: int | None = None,
              store: StudyStore | None = None,
              progress: Callable[[int, int, str], None] | None = None,
              max_shards: int | None = None,
              context: dict | None = None) -> StudyRunReport:
    """Execute a study and merge its shards into one results table.

    Args:
        spec: The validated study specification.
        jobs: Worker processes; ``1`` (default) runs inline in this process.
        shards: Number of contiguous case chunks.  Defaults to
            ``min(case_count, 16)``; a resumed run must use the same shard
            layout as the run that populated the store (the store keys by
            case range, so a different layout simply recomputes).
        store: Optional :class:`~repro.study.results.StudyStore`; completed
            shards persist there and are reused by later runs (resume).
        progress: Optional ``progress(done, total, label)`` callback invoked
            once per finished shard (reused shards report first).
        max_shards: Stop after computing this many new shards (reused shards
            don't count) — a smoke/ops hook that yields a ``partial`` report;
            rerun with the same store to continue.
        context: Optional engine context.  ``profile_cache`` /
            ``weather_cache`` objects are honoured inline (``jobs=1``) only;
            ``cache_dir`` (a path string) is forwarded to worker processes,
            which share state through per-process disk-backed caches.

    Returns:
        The :class:`StudyRunReport` with the merged
        :class:`~repro.study.results.StudyTable` (partial runs contain only
        the completed case ranges, in order).

    Raises:
        ConfigurationError: On invalid ``jobs``/``shards`` or any engine
            error raised by a case.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if max_shards is not None and max_shards < 0:
        raise ConfigurationError(f"max_shards must be >= 0, got {max_shards}")
    case_count = spec.case_count
    if shards is None:
        shards = min(case_count, DEFAULT_MAX_SHARDS)
    ranges = shard_ranges(case_count, shards)

    done: list[ShardTable] = []
    pending: list[tuple[int, int]] = []
    for start, stop in ranges:
        cached = store.get_shard(spec, start, stop) if store is not None else None
        if cached is not None:
            done.append(cached)
        else:
            pending.append((start, stop))
    reused = len(done)
    total = len(ranges)
    finished = reused
    if progress is not None and reused:
        progress(finished, total, f"{reused} shards reused from store")

    if max_shards is not None:
        pending = pending[:max_shards]

    def record(start: int, stop: int, shard: ShardTable) -> None:
        nonlocal finished
        if store is not None:
            store.put_shard(spec, start, stop, shard)
        done.append(shard)
        finished += 1
        if progress is not None:
            progress(finished, total, f"cases [{start}:{stop})")

    context = dict(context or {})
    if jobs == 1 or len(pending) <= 1:
        for start, stop in pending:
            _, shard = _run_shard((spec, start, stop, context))
            record(start, stop, shard)
    else:
        shipped = {k: context[k] for k in _PICKLABLE_CONTEXT_KEYS
                   if k in context}
        workers = min(jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_shard, (spec, start, stop, shipped)):
                       (start, stop) for start, stop in pending}
            for future in concurrent.futures.as_completed(futures):
                start, stop = futures[future]
                _, shard = future.result()
                record(start, stop, shard)

    table = build_table(spec, merge_shards(done))
    return StudyRunReport(spec=spec, table=table, shards=total,
                          reused_shards=reused,
                          computed_shards=len(done) - reused, jobs=jobs)

"""Supervised sharded study execution: retries, timeouts, pool rebuilds.

:func:`run_study` turns a :class:`~repro.study.spec.StudySpec` into a merged
:class:`~repro.study.results.StudyTable`:

1. the case list (cartesian axis product) is split into ``shards`` contiguous
   chunks of near-equal size;
2. shards already present in the optional :class:`~repro.study.results.StudyStore`
   are reused (resume-from-partial);
3. the remaining shards run under a **supervisor loop** — inline for
   ``jobs=1``, otherwise on a :class:`~concurrent.futures.ProcessPoolExecutor`
   of ``jobs`` workers — with a ``[k/n]`` progress callback per completed
   shard;
4. completed shards persist to the store and merge, in case order, into the
   final table.

**Fault tolerance.**  At network scale (tens of thousands of segments x
scenarios) individual worker failures are routine, not exceptional, so the
supervisor treats them as schedulable events rather than run-enders:

* a failing shard is retried up to ``retries`` times with capped exponential
  backoff, **deterministically jittered** from the study seed
  (:func:`retry_delay`) so a rerun reproduces the schedule exactly;
* a shard exceeding ``shard_timeout`` seconds of wall clock is declared
  hung: its worker pool is torn down (terminating the stuck process), lost
  in-flight shards requeue, and the timed-out attempt counts against the
  shard's retry budget;
* a worker killed hard (OOM, SIGKILL, ``os._exit``) surfaces as
  ``BrokenProcessPool``: the supervisor rebuilds the pool and requeues only
  the shards that were in flight — completed shards are kept;
* with ``keep_going=True`` a shard that exhausts its budget is quarantined
  into :attr:`StudyRunReport.failed_shards` (with attempt counts and error
  provenance) instead of aborting the run; without it, the last engine
  exception is re-raised (or :class:`~repro.errors.StudyExecutionError` for
  crashes/timeouts) after completed shards have been persisted;
* ``KeyboardInterrupt`` cancels pending work, persists what finished and
  returns a partial report instead of losing the run;
* a **programmatic cancellation hook** (``cancel=`` — any zero-argument
  callable, e.g. ``threading.Event.is_set``) does the same under caller
  control: the scenario-planning service uses it to enforce per-job
  deadlines and drain shutdowns, mapping the resulting partial report to
  an explicit ``"partial"`` job state;
* every lifecycle event (submit / finish / retry / timeout / pool rebuild /
  failure / interrupt) lands in a structured JSONL journal
  (:mod:`repro.study.journal`), by default ``run.jsonl`` beside the store.

**CRN contract.**  A case's engine seed depends only on the study seed and
the case index (:meth:`~repro.study.spec.StudySpec.case_seed`); the stochastic
engines then seed their streams ``default_rng([seed, t])`` per trial /
realization.  Shard boundaries, retries, pool rebuilds and resumes never
enter the seeding path, so the merged table is bit-identical for *any* shard
count, job count and failure history — asserted in ``tests/test_study.py``
and the fault-injection matrix ``tests/test_faults.py``.
"""

from __future__ import annotations

import concurrent.futures
import time
import warnings
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.backend import resolve_backend_name
from repro.errors import ConfigurationError, StudyExecutionError
from repro.faults import CONTEXT_KEY as _FAULT_CONTEXT_KEY
from repro.faults import FaultPlan
from repro.study.engines import run_cases
from repro.study.journal import RunJournal
from repro.study.results import (
    ShardTable,
    StudyStore,
    StudyTable,
    build_table,
    merge_shards,
)
from repro.study.spec import StudySpec

__all__ = ["FailedShard", "StudyRunReport", "retry_delay", "run_study",
           "shard_ranges"]

#: Default upper bound on the shard count (kept independent of ``jobs`` so a
#: resumed run finds the same shard layout regardless of its parallelism).
DEFAULT_MAX_SHARDS = 16

#: Supervisor poll interval [s] while futures are in flight.
_POLL_S = 0.05

#: Layout mismatches already warned about this process, keyed by
#: ``(compute_hash, stored layout, current layout)`` — a large resume (or a
#: service process supervising many runs) reports each mismatch once, not
#: once per call that rediscovers it.
_WARNED_LAYOUTS: set[tuple] = set()


class _RunCancelled(BaseException):
    """Internal control-flow signal: the ``cancel`` hook fired.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so it
    cannot be swallowed by engine-level ``except Exception`` handlers on its
    way out of the supervisor loops.
    """


def shard_ranges(case_count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``case_count`` cases into ``shards`` contiguous ``[start, stop)``
    ranges whose sizes differ by at most one.

    Args:
        case_count: Total number of cases.
        shards: Requested shard count (clamped to ``case_count``).

    Returns:
        The ordered, non-empty case ranges.
    """
    if case_count < 1:
        raise ConfigurationError(f"case_count must be >= 1, got {case_count}")
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    shards = min(shards, case_count)
    bounds = [round(i * case_count / shards) for i in range(shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(shards)]


def retry_delay(seed: int, shard_start: int, attempt: int,
                base: float = 0.25, cap: float = 8.0) -> float:
    """Backoff delay [s] before re-attempting a shard — deterministic.

    Capped exponential backoff with jitter drawn from
    ``SeedSequence([seed, shard_start, attempt])``, so the whole retry
    schedule is a pure function of the study seed and the failure history:
    a rerun under the same fault plan reproduces identical wall-clock
    behaviour (up to scheduler noise), which keeps chaos tests and
    production post-mortems comparable.

    Args:
        seed: The study seed.
        shard_start: First case index of the shard (its stable identity).
        attempt: 1-based attempt number that just failed.
        base: Delay scale of the first retry [s]; ``0`` disables backoff.
        cap: Upper bound on the un-jittered delay [s].

    Returns:
        The delay in seconds (jittered into ``[0.5, 1.0] * exponential``).
    """
    if base <= 0.0:
        return 0.0
    exponential = min(cap, base * (2.0 ** (attempt - 1)))
    state = np.random.SeedSequence([int(seed), int(shard_start), int(attempt)])
    unit = state.generate_state(1, dtype=np.uint64)[0] / float(2 ** 64)
    return exponential * (0.5 + 0.5 * float(unit))


def _run_shard(payload: tuple[StudySpec, int, int, dict, int, int]
               ) -> tuple[int, ShardTable]:
    """Worker entry point: evaluate the ``[start, stop)`` case range.

    Module-level so it pickles into :class:`ProcessPoolExecutor` workers;
    regenerates the case list from the spec (cheap, deterministic) instead of
    shipping it, and relies on per-process engine caches
    (:mod:`repro.study.engines`) for shared state.  When the context carries
    a fault plan (:mod:`repro.faults`), the worker executes its own planned
    fault for this ``(shard, attempt)`` before computing — the supervisor
    sees only the resulting failure, exactly like a real one.
    """
    spec, start, stop, context, shard_index, attempt = payload
    plan = FaultPlan.from_context(context)
    if plan is not None:
        plan.execute(shard_index, attempt, study=spec, start=start, stop=stop)
    cases = spec.cases()[start:stop]
    seeds = [spec.case_seed(i) for i in range(start, stop)]
    rows = run_cases(spec.engine, cases, seeds, context=context)
    shard: ShardTable = {"case": list(range(start, stop))}
    if rows:
        for metric in rows[0]:
            shard[metric] = [row[metric] for row in rows]
    return start, shard


#: Context keys that are plain data and may cross a process boundary; live
#: cache objects (``profile_cache``, ``weather_cache``) stay inline-only.
_PICKLABLE_CONTEXT_KEYS = ("cache_dir", "jobs", "backend", _FAULT_CONTEXT_KEY)


@dataclass(frozen=True)
class FailedShard:
    """Provenance of one shard quarantined after exhausting its retries.

    Attributes
    ----------
    index:
        Shard index in the run's layout.
    start / stop:
        The shard's ``[start, stop)`` case range.
    attempts:
        Total attempts made (``retries + 1`` unless the run aborted early).
    error:
        Representation of the last failure (exception ``repr`` or a
        timeout/crash description).
    kind:
        ``"error"`` (worker exception), ``"timeout"`` (shard timeout) or
        ``"crash"`` (worker process lost).
    """

    index: int
    start: int
    stop: int
    attempts: int
    error: str
    kind: str


@dataclass(frozen=True)
class StudyRunReport:
    """A finished (or partial) study run: the merged table + provenance.

    ``partial`` is True when some shards were never completed — because
    ``max_shards`` stopped the run early, a ``KeyboardInterrupt`` stopped
    it (``interrupted``), the programmatic ``cancel`` hook fired
    (``cancelled`` — a service deadline or drain), or shards were
    quarantined (``failed_shards``); re-running with the same store
    completes or re-attempts them.
    """

    spec: StudySpec
    table: StudyTable
    shards: int
    reused_shards: int
    computed_shards: int
    jobs: int
    failed_shards: tuple[FailedShard, ...] = ()
    shard_attempts: dict = field(default_factory=dict)
    interrupted: bool = False
    cancelled: bool = False

    @property
    def partial(self) -> bool:
        """True when not every shard of the layout completed successfully."""
        return self.reused_shards + self.computed_shards < self.shards

    @property
    def retried(self) -> int:
        """Total extra attempts beyond the first, across all shards."""
        return sum(max(0, n - 1) for n in self.shard_attempts.values())

    def summary(self) -> str:
        """One-line run summary for logs and the CLI."""
        if self.failed_shards:
            state = f"{len(self.failed_shards)} shards FAILED"
        elif self.cancelled:
            state = "cancelled"
        elif self.interrupted:
            state = "interrupted"
        elif self.partial:
            state = "partial"
        else:
            state = "complete"
        retries = f", {self.retried} retries" if self.retried else ""
        return (f"study {self.spec.name!r}: {len(self.table)}/"
                f"{self.spec.case_count} cases ({state}), "
                f"{self.shards} shards ({self.reused_shards} reused, "
                f"{self.computed_shards} computed{retries}), jobs={self.jobs}")


@dataclass
class _Attempt:
    """Mutable supervisor bookkeeping for one shard."""

    index: int
    start: int
    stop: int
    attempt: int = 0          # attempts started so far
    ready_at: float = 0.0     # monotonic time the next attempt may start
    last_error: BaseException | None = None
    last_kind: str = "error"

    def describe_error(self) -> str:
        if self.last_error is not None:
            return repr(self.last_error)
        return f"shard {self.index} {self.last_kind} (no exception captured)"


def _kill_pool(pool: concurrent.futures.ProcessPoolExecutor) -> None:
    """Tear a pool down hard, terminating workers that ignore shutdown.

    ``shutdown`` alone never interrupts a *running* task, so a hung worker
    would pin the process forever; terminating the worker processes is the
    only portable cancellation.  ``_processes`` is private but stable across
    supported CPython versions, and an empty mapping (pool already broken)
    degrades to a plain shutdown.
    """
    procs = getattr(pool, "_processes", None)
    processes = list(procs.values()) if isinstance(procs, dict) else []
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_study(spec: StudySpec,
              jobs: int = 1,
              shards: int | None = None,
              store: StudyStore | None = None,
              progress: Callable[[int, int, str], None] | None = None,
              max_shards: int | None = None,
              context: dict | None = None,
              retries: int = 0,
              shard_timeout: float | None = None,
              keep_going: bool = False,
              backoff_base: float = 0.25,
              backoff_cap: float = 8.0,
              journal: str | Path | RunJournal | None = None,
              cancel: Callable[[], bool] | None = None,
              only_shards: Sequence[int] | None = None,
              force_backend: bool = False) -> StudyRunReport:
    """Execute a study under the supervisor and merge its shards.

    Args:
        spec: The validated study specification.
        jobs: Worker processes; ``1`` (default) runs inline in this process.
        shards: Number of contiguous case chunks.  Defaults to
            ``min(case_count, 16)``; a resumed run must use the same shard
            layout as the run that populated the store (a differing layout
            recomputes, and is reported — see Warns below).
        store: Optional :class:`~repro.study.results.StudyStore`; completed
            shards persist there and are reused by later runs (resume).
        progress: Optional ``progress(done, total, label)`` callback invoked
            once per finished shard (reused shards report first).
        max_shards: Stop after computing this many new shards (reused shards
            don't count) — a smoke/ops hook that yields a ``partial`` report;
            rerun with the same store to continue.
        context: Optional engine context.  ``profile_cache`` /
            ``weather_cache`` objects are honoured inline (``jobs=1``) only;
            ``cache_dir`` (a path string), ``backend`` and ``fault_plan``
            (a :meth:`repro.faults.FaultPlan.to_context` mapping) are
            forwarded to worker processes.
        retries: Extra attempts per failing shard (``0`` keeps the historic
            fail-fast behaviour).
        shard_timeout: Wall-clock budget [s] per shard attempt; a hung
            worker is terminated (pool rebuild) and the attempt counts
            against the retry budget.  Requires ``jobs > 1`` — inline
            execution cannot preempt itself, so the timeout is ignored there.
        keep_going: Quarantine shards that exhaust their retry budget into
            :attr:`StudyRunReport.failed_shards` instead of aborting.
        backoff_base: First-retry backoff scale [s] (``0`` disables backoff;
            see :func:`retry_delay`).
        backoff_cap: Upper bound on the un-jittered backoff [s].
        journal: JSONL event journal — a path, an existing
            :class:`~repro.study.journal.RunJournal`, or ``None`` to default
            to ``run.jsonl`` inside the store's directory (no journal when
            the store has no disk layer).
        cancel: Optional zero-argument callable polled by the supervisor
            (e.g. ``threading.Event().is_set``).  When it returns true the
            run stops like a ``KeyboardInterrupt`` would — no new shard
            attempts start, in-flight pool attempts are abandoned (their
            workers terminated), completed shards stay persisted — and the
            report comes back with :attr:`StudyRunReport.cancelled` set.
            This is the deadline/drain hook of the scenario-planning
            service (:mod:`repro.service`).
        only_shards: Optional shard indices (into the run's layout) this
            call is responsible for; every other shard is neither reused
            nor computed, and the report's ``shards`` total refers to the
            slice.  The shard layout itself is always the *global* one
            (``shard_ranges(case_count, shards)``), so any partition of the
            indices across workers — :mod:`repro.study.distributed` uses a
            round-robin slice — produces bundles a merge can reassemble
            bit-identically.
        force_backend: Accept a kernel backend that differs from the one
            recorded in the store's run metadata (the recorded value is
            then overwritten).  Without it, such a resume fails instead of
            silently mixing backends in one store (see Raises).

    Returns:
        The :class:`StudyRunReport` with the merged
        :class:`~repro.study.results.StudyTable` (partial runs contain only
        the completed case ranges, in order).

    Warns:
        RuntimeWarning: When the store holds shards of this spec under a
            different shard layout than the current run (the resume cannot
            reuse them and recomputes; the warning names both layouts).

    Raises:
        ConfigurationError: On invalid ``jobs``/``shards``/``retries``/
            ``only_shards``; also when new shards are about to be computed
            into a store whose recorded run metadata names a *different*
            kernel backend than this run resolves to (``numpy`` vs
            ``reference`` vs ``numba`` results agree only to tolerance,
            not bit-for-bit, so mixing them would silently break the CRN
            bit-identity contract) — pass ``force_backend=True``
            (CLI ``--force``) to accept the mix.
        StudyExecutionError: When a shard exhausts its retry budget through
            crashes or timeouts and ``keep_going`` is off.  Engine
            exceptions (including injected faults) are re-raised unchanged
            after the last attempt instead.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if max_shards is not None and max_shards < 0:
        raise ConfigurationError(f"max_shards must be >= 0, got {max_shards}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if shard_timeout is not None and shard_timeout <= 0:
        raise ConfigurationError(
            f"shard_timeout must be > 0, got {shard_timeout}")
    case_count = spec.case_count
    if shards is None:
        shards = min(case_count, DEFAULT_MAX_SHARDS)
    ranges = shard_ranges(case_count, shards)
    selected: set[int] | None = None
    if only_shards is not None:
        selected = {int(i) for i in only_shards}
        if not selected:
            raise ConfigurationError("only_shards must name at least one shard")
        out_of_range = sorted(i for i in selected
                              if not 0 <= i < len(ranges))
        if out_of_range:
            raise ConfigurationError(
                f"only_shards indices {out_of_range} outside the "
                f"{len(ranges)}-shard layout")
    context = dict(context or {})

    if isinstance(journal, RunJournal):
        log = journal
    elif journal is not None:
        log = RunJournal(journal)
    elif store is not None and store.cache_dir is not None:
        log = RunJournal(store.cache_dir / "run.jsonl")
    else:
        log = RunJournal(None)
    run_t0 = time.monotonic()
    log.emit("run_start", study=spec.name, compute_hash=spec.compute_hash,
             shards=len(ranges), jobs=jobs, retries=retries,
             shard_timeout_s=shard_timeout, keep_going=keep_going)

    done: list[ShardTable] = []
    pending: list[tuple[int, int, int]] = []  # (shard index, start, stop)
    stored = store.stored_ranges(spec) if store is not None else []
    for index, (start, stop) in enumerate(ranges):
        if selected is not None and index not in selected:
            continue
        cached = store.get_shard(spec, start, stop) if store is not None else None
        if cached is not None:
            done.append(cached)
            log.emit("reused", shard=index, start=start, stop=stop)
        else:
            pending.append((index, start, stop))
    reused = len(done)
    total = len(selected) if selected is not None else len(ranges)
    finished = reused
    if progress is not None and reused:
        progress(finished, total, f"{reused} shards reused from store")

    foreign = sorted(set(stored) - set(ranges))
    if foreign:
        log.emit("layout_mismatch", stored=[list(r) for r in stored],
                 current=[list(r) for r in ranges])
        fingerprint = (spec.compute_hash, tuple(stored), tuple(ranges))
        if fingerprint not in _WARNED_LAYOUTS:
            _WARNED_LAYOUTS.add(fingerprint)
            warnings.warn(
                f"study store holds {len(foreign)} shard(s) of "
                f"{spec.name!r} under a different shard layout — stored "
                f"{len(stored)} shards {stored[0]}..{stored[-1]} vs. "
                f"current {len(ranges)}-shard layout; the mismatched "
                f"shards cannot be reused and will be recomputed (rerun "
                f"with the original --shards to reuse them)",
                RuntimeWarning, stacklevel=2)

    if max_shards is not None:
        pending = pending[:max_shards]

    backend = resolve_backend_name(context.get("backend"))
    if store is not None and pending:
        # About to compute new bundles into this store: refuse to mix
        # kernel backends (their results agree only to tolerance, which
        # would break the bit-identity contract of resumes and merges).
        recorded = (store.run_metadata(spec) or {}).get("backend")
        if (recorded is not None and recorded != backend
                and not force_backend):
            raise ConfigurationError(
                f"store holds shards of {spec.name!r} computed with "
                f"backend {recorded!r}, but this run resolves to "
                f"{backend!r}; mixing backends in one store breaks "
                f"bit-identical resume — rerun with the recorded backend "
                f"or pass --force to accept the mix")
        from repro import __version__
        store.put_run_metadata(spec, {
            "study": spec.name, "compute_hash": spec.compute_hash,
            "backend": backend, "version": __version__})

    def record(index: int, start: int, stop: int, shard: ShardTable,
               attempt: int, wall_s: float) -> None:
        nonlocal finished
        if store is not None:
            store.put_shard(spec, start, stop, shard)
        done.append(shard)
        finished += 1
        log.emit("finish", shard=index, start=start, stop=stop,
                 attempt=attempt, wall_s=wall_s)
        if progress is not None:
            progress(finished, total, f"cases [{start}:{stop})")

    jobs_meta: dict[int, _Attempt] = {
        index: _Attempt(index=index, start=start, stop=stop)
        for index, start, stop in pending}
    failed: list[FailedShard] = []
    max_attempts = retries + 1

    def on_failure(meta: _Attempt, error: BaseException | None,
                   kind: str) -> bool:
        """Register a failed attempt; True when the shard may retry."""
        meta.last_error = error
        meta.last_kind = kind
        if meta.attempt < max_attempts:
            delay = retry_delay(spec.seed, meta.start, meta.attempt,
                                base=backoff_base, cap=backoff_cap)
            meta.ready_at = time.monotonic() + delay
            log.emit("retry", shard=meta.index, start=meta.start,
                     stop=meta.stop, attempt=meta.attempt, delay_s=delay,
                     error=meta.describe_error(), kind=kind)
            return True
        log.emit("failure", shard=meta.index, start=meta.start,
                 stop=meta.stop, attempts=meta.attempt,
                 error=meta.describe_error(), kind=kind)
        failed.append(FailedShard(
            index=meta.index, start=meta.start, stop=meta.stop,
            attempts=meta.attempt, error=meta.describe_error(), kind=kind))
        return False

    def final_error(meta: _Attempt) -> BaseException:
        if meta.last_error is not None:
            return meta.last_error
        return StudyExecutionError(
            f"shard {meta.index} (cases [{meta.start}:{meta.stop})) failed "
            f"{meta.attempt} attempt(s) by {meta.last_kind} "
            f"(see the run journal for provenance)")

    interrupted = False
    cancelled = False
    try:
        if jobs == 1 or not jobs_meta:
            _run_inline(spec, context, jobs_meta, record, on_failure,
                        final_error, keep_going, log, cancel)
        else:
            _run_supervised(spec, context, jobs_meta, record, on_failure,
                            final_error, keep_going, jobs, shard_timeout, log,
                            cancel)
    except KeyboardInterrupt:
        interrupted = True
        log.emit("interrupt", completed=finished)
    except _RunCancelled:
        cancelled = True
        log.emit("cancel", completed=finished)

    table = build_table(spec, merge_shards(done))
    report = StudyRunReport(
        spec=spec, table=table, shards=total, reused_shards=reused,
        computed_shards=len(done) - reused, jobs=jobs,
        failed_shards=tuple(failed),
        shard_attempts={index: meta.attempt
                        for index, meta in jobs_meta.items() if meta.attempt},
        interrupted=interrupted, cancelled=cancelled)
    log.emit("run_end", computed=report.computed_shards,
             reused=report.reused_shards, failed=len(report.failed_shards),
             interrupted=interrupted, cancelled=cancelled,
             partial=report.partial, wall_s=time.monotonic() - run_t0)
    return report


def _run_inline(spec, context, jobs_meta, record, on_failure, final_error,
                keep_going, log, cancel=None) -> None:
    """Inline (jobs=1) supervisor: retry/backoff without a process pool.

    ``shard_timeout`` is not enforceable here (the attempt runs on this very
    thread) and ``crash`` faults would take the caller down — both need
    ``jobs > 1``.  The ``cancel`` hook is polled between shard attempts (a
    running attempt cannot be preempted inline).
    """
    queue = deque(jobs_meta.values())
    while queue:
        if cancel is not None and cancel():
            raise _RunCancelled
        meta = queue.popleft()
        wait = meta.ready_at - time.monotonic()
        if wait > 0:
            time.sleep(wait)
        meta.attempt += 1
        log.emit("submit", shard=meta.index, start=meta.start, stop=meta.stop,
                 attempt=meta.attempt)
        t0 = time.monotonic()
        try:
            _, shard = _run_shard((spec, meta.start, meta.stop, context,
                                   meta.index, meta.attempt))
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            if on_failure(meta, exc, "error"):
                queue.append(meta)
            elif not keep_going:
                raise final_error(meta) from None
            continue
        record(meta.index, meta.start, meta.stop, shard, meta.attempt,
               time.monotonic() - t0)


def _run_supervised(spec, context, jobs_meta, record, on_failure, final_error,
                    keep_going, jobs, shard_timeout, log,
                    cancel=None) -> None:
    """Process-pool supervisor loop: at most ``jobs`` shards in flight.

    Shards are submitted only when a worker slot is free, so each attempt's
    wall clock (the ``shard_timeout`` reference point) starts when the
    worker actually starts, not when the shard was queued behind others.
    The ``cancel`` hook is polled once per supervisor round (every
    ``_POLL_S`` while work is in flight); on cancellation the loop exits
    immediately and the ``finally`` teardown terminates in-flight workers.
    """
    shipped = {k: context[k] for k in _PICKLABLE_CONTEXT_KEYS if k in context}
    workers = min(jobs, max(1, len(jobs_meta)))
    queue: deque[_Attempt] = deque(jobs_meta.values())
    running: dict[concurrent.futures.Future, tuple[_Attempt, float]] = {}
    pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)

    def submit(meta: _Attempt) -> None:
        meta.attempt += 1
        log.emit("submit", shard=meta.index, start=meta.start, stop=meta.stop,
                 attempt=meta.attempt)
        future = pool.submit(_run_shard, (spec, meta.start, meta.stop,
                                          shipped, meta.index, meta.attempt))
        running[future] = (meta, time.monotonic())

    def rebuild(lost_reason: str) -> None:
        """Tear down the pool, requeue in-flight shards, start fresh."""
        nonlocal pool
        lost = [meta for meta, _ in running.values()]
        running.clear()
        _kill_pool(pool)
        log.emit("pool_broken", lost=[meta.index for meta in lost],
                 reason=lost_reason)
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        for meta in lost:
            # The in-flight attempt died with the pool: it counts against
            # the budget (a crashing shard must not retry forever), and the
            # shard re-enters the queue behind its deterministic backoff.
            if on_failure(meta, meta.last_error, meta.last_kind):
                queue.append(meta)
            elif not keep_going:
                raise final_error(meta) from None

    try:
        while queue or running:
            if cancel is not None and cancel():
                raise _RunCancelled
            now = time.monotonic()
            # Fill free worker slots with shards whose backoff has elapsed.
            for _ in range(len(queue)):
                if len(running) >= workers:
                    break
                meta = queue.popleft()
                if meta.ready_at > now:
                    queue.append(meta)  # not ready; rotate
                    continue
                try:
                    submit(meta)
                except concurrent.futures.BrokenExecutor:
                    # The pool broke before we noticed (submit is the first
                    # call to see it): the attempt never ran, but the pool
                    # loss is real — charge it and rebuild.
                    if on_failure(meta, None, "crash"):
                        queue.append(meta)
                    elif not keep_going:
                        raise final_error(meta) from None
                    for other, _ in running.values():
                        other.last_error = None
                        other.last_kind = "crash"
                    rebuild("worker process lost (detected at submit)")
                    break
            if not running:
                if queue:  # everyone is backing off — sleep to the earliest
                    time.sleep(max(0.0, min(m.ready_at for m in queue) - now))
                continue

            finished_futures = concurrent.futures.wait(
                list(running), timeout=_POLL_S,
                return_when=concurrent.futures.FIRST_COMPLETED).done
            broken = False
            for future in finished_futures:
                meta, t0 = running.pop(future)
                try:
                    _, shard = future.result()
                except (BrokenProcessPool,
                        concurrent.futures.BrokenExecutor):
                    # A hard-killed worker poisons every in-flight future;
                    # keep collecting (a shard may still have finished in
                    # this round) and rebuild once below.
                    meta.last_error = None
                    meta.last_kind = "crash"
                    running[future] = (meta, t0)
                    broken = True
                    continue
                except Exception as exc:
                    if on_failure(meta, exc, "error"):
                        queue.append(meta)
                    elif not keep_going:
                        raise final_error(meta) from None
                    continue
                record(meta.index, meta.start, meta.stop, shard,
                       meta.attempt, time.monotonic() - t0)
            if broken:
                for meta, _ in running.values():
                    meta.last_error = None
                    meta.last_kind = "crash"
                rebuild("worker process lost (BrokenProcessPool)")
                continue

            # Wall-clock timeout: a hung worker cannot be cancelled through
            # the future, so the pool is torn down and rebuilt.
            if shard_timeout is not None:
                now = time.monotonic()
                timed_out = [(future, meta, t0)
                             for future, (meta, t0) in running.items()
                             if now - t0 > shard_timeout]
                if timed_out:
                    for future, meta, t0 in timed_out:
                        log.emit("timeout", shard=meta.index, start=meta.start,
                                 stop=meta.stop, attempt=meta.attempt,
                                 timeout_s=shard_timeout)
                        meta.last_error = None
                        meta.last_kind = "timeout"
                    for meta, _ in running.values():
                        if meta.last_kind != "timeout":
                            meta.last_error = None
                            meta.last_kind = "crash"
                    rebuild(f"shard timeout after {shard_timeout}s")
    finally:
        _kill_pool(pool)

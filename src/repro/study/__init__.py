"""Declarative study layer: YAML/TOML sweeps over the batch engines.

A *study* is a sweep-as-data document — axes over any scenario / solar / MC /
sim parameter, an engine selection, seeds and derived-metric formulas — that
compiles to the existing batch engines and runs through a sharded,
resumable, process-parallel **supervised** runner (per-shard retries with
deterministic backoff, wall-clock timeouts, automatic pool rebuilds,
fault quarantine and a JSONL run journal) into one tidy results table.

::

    from repro.study import load_study, run_study

    spec = load_study("studies/sim_grid.yaml")
    report = run_study(spec, jobs=4)
    report.table.write_csv("sim_grid.csv")        # tidy long format

See ``docs/studies.md`` for the document schema and ``studies/*.yaml`` for
the shipped examples mirroring the ``sim-grid`` / ``robustness-grid`` /
``table4-grid`` experiments.
"""

from repro.study.distributed import (
    MergeReport,
    RefreshReport,
    SliceRunReport,
    case_fingerprint,
    merge_manifests,
    refresh_study,
    run_shard_slice,
    slice_shards,
)
from repro.study.engines import STUDY_ENGINES, EngineAdapter, run_cases
from repro.study.expressions import compile_expression
from repro.study.journal import RunJournal, read_journal, scan_journal
from repro.study.manifest import (
    ShardEntry,
    ShardManifest,
    build_manifest,
    load_manifest,
    write_manifest,
)
from repro.study.results import StudyStore, StudyTable, build_table, merge_shards
from repro.study.runner import (
    FailedShard,
    StudyRunReport,
    retry_delay,
    run_study,
    shard_ranges,
)
from repro.study.spec import StudySpec, load_study, parse_study, study_from_mapping

__all__ = [
    "STUDY_ENGINES",
    "EngineAdapter",
    "run_cases",
    "MergeReport",
    "RefreshReport",
    "SliceRunReport",
    "case_fingerprint",
    "merge_manifests",
    "refresh_study",
    "run_shard_slice",
    "slice_shards",
    "ShardEntry",
    "ShardManifest",
    "build_manifest",
    "load_manifest",
    "write_manifest",
    "compile_expression",
    "RunJournal",
    "read_journal",
    "scan_journal",
    "StudyStore",
    "StudyTable",
    "build_table",
    "merge_shards",
    "FailedShard",
    "StudyRunReport",
    "retry_delay",
    "run_study",
    "shard_ranges",
    "StudySpec",
    "load_study",
    "parse_study",
    "study_from_mapping",
]

"""Declarative study specifications: sweeps as data, not code.

A :class:`StudySpec` captures everything a multi-engine sweep needs — the
engine to drive, the sweep axes, the fixed parameters, the seeding policy and
any derived-metric formulas — as one plain-data document, loadable from YAML
or TOML (``studies/*.yaml`` ships worked examples; the schema is documented
in ``docs/studies.md``).

The spec *compiles* to the existing batch engines: each point of the
cartesian axis product becomes one **case**, a plain parameter dict the
engine adapter (:mod:`repro.study.engines`) evaluates through
:func:`repro.radio.batch.evaluate_scenarios`,
:func:`repro.solar.batch.simulate_systems`,
:func:`repro.optimize.mc.outage_matrix` or
:func:`repro.simulation.batch.simulate_days`.  The sharded runner
(:mod:`repro.study.runner`) executes cases in chunks; the results store
(:mod:`repro.study.results`) merges them into one tidy table.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from itertools import product
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.scenario.spec import content_token
from repro.study.expressions import compile_expression, expression_names

__all__ = ["StudySpec", "load_study", "parse_study", "study_from_mapping"]

#: Seeding policies.  ``shared`` passes the study seed to every case — the
#: common-random-number convention of the grid experiments (every cell sees
#: identical stochastic streams, so cross-cell comparisons carry no sampling
#: noise).  ``per-case`` derives an independent seed per case index.
SEED_MODES = ("shared", "per-case")

_SCALAR_TYPES = (bool, int, float, str)


def _check_scalar(value, where: str):
    if isinstance(value, _SCALAR_TYPES) or value is None:
        return value
    raise ConfigurationError(
        f"{where}: values must be scalars (bool/int/float/str), "
        f"got {type(value).__name__}")


@dataclass(frozen=True)
class StudySpec:
    """One declarative sweep over a batch engine.

    Attributes
    ----------
    name:
        Identifier of the study (used in filenames and provenance records).
    engine:
        Engine adapter id — one of :data:`repro.study.engines.STUDY_ENGINES`
        (``radio``, ``solar``, ``mc``, ``sim``).
    axes:
        Ordered ``(parameter, values)`` sweep axes.  Cases are the cartesian
        product in declaration order, last axis fastest (the
        :func:`itertools.product` convention).
    fixed:
        Ordered ``(parameter, value)`` overrides applied to every case.
    seed:
        Root seed of the study (propagated to stochastic engines).
    seed_mode:
        ``"shared"`` (default, common random numbers across cases) or
        ``"per-case"`` (independent streams per case index); both are
        invariant to the shard layout.
    derived:
        Ordered ``(metric, expression)`` formulas evaluated per case over the
        engine metrics (see :mod:`repro.study.expressions`).
    metrics:
        Optional subset of engine metric names to keep in the results table
        (derived metrics are always kept); ``()`` keeps everything.
    description:
        Free-form one-liner for ``repro study list`` and the docs.
    """

    name: str
    engine: str
    axes: tuple[tuple[str, tuple], ...]
    fixed: tuple[tuple[str, object], ...] = ()
    seed: int = 0
    seed_mode: str = "shared"
    derived: tuple[tuple[str, str], ...] = ()
    metrics: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ConfigurationError("study name must be a non-empty string")
        if self.seed_mode not in SEED_MODES:
            raise ConfigurationError(
                f"seed_mode must be one of {SEED_MODES}, got {self.seed_mode!r}")
        if not self.axes:
            raise ConfigurationError(
                f"study {self.name!r} declares no sweep axes")
        object.__setattr__(self, "axes", tuple(
            (str(name), tuple(_check_scalar(v, f"axis {name!r}") for v in values))
            for name, values in self.axes))
        object.__setattr__(self, "fixed", tuple(
            (str(name), _check_scalar(value, f"fixed parameter {name!r}"))
            for name, value in self.fixed))
        for name, values in self.axes:
            if not values:
                raise ConfigurationError(
                    f"axis {name!r} of study {self.name!r} is empty")
        axis_names = [name for name, _ in self.axes]
        if len(set(axis_names)) != len(axis_names):
            raise ConfigurationError(
                f"study {self.name!r} repeats an axis name: {axis_names}")
        overlap = set(axis_names) & {name for name, _ in self.fixed}
        if overlap:
            raise ConfigurationError(
                f"study {self.name!r} declares {sorted(overlap)} both as an "
                f"axis and as a fixed parameter")
        derived_names = [name for name, _ in self.derived]
        if len(set(derived_names)) != len(derived_names):
            raise ConfigurationError(
                f"study {self.name!r} repeats a derived metric: {derived_names}")
        for name, expression in self.derived:
            compile_expression(expression)  # syntax check at load time
        self._validate_against_engine()

    # -- engine contract -----------------------------------------------------

    def _validate_against_engine(self) -> None:
        from repro.study.engines import STUDY_ENGINES

        adapter = STUDY_ENGINES.get(self.engine)
        if adapter is None:
            raise ConfigurationError(
                f"study {self.name!r}: unknown engine {self.engine!r}; "
                f"available: {sorted(STUDY_ENGINES)}")
        declared = {name for name, _ in self.axes} | {name for name, _ in self.fixed}
        unknown = declared - set(adapter.params)
        if unknown:
            raise ConfigurationError(
                f"study {self.name!r}: engine {self.engine!r} does not accept "
                f"{sorted(unknown)}; accepted: {sorted(adapter.params)}")
        missing = adapter.required - declared
        if missing:
            raise ConfigurationError(
                f"study {self.name!r}: engine {self.engine!r} requires "
                f"{sorted(missing)} (as an axis or a fixed parameter)")
        engine_metrics = set(adapter.metrics)
        bad_subset = set(self.metrics) - engine_metrics
        if bad_subset:
            raise ConfigurationError(
                f"study {self.name!r}: unknown metrics {sorted(bad_subset)}; "
                f"engine {self.engine!r} produces {sorted(engine_metrics)}")
        reserved = engine_metrics | declared | {"case"}
        for name, expression in self.derived:
            if name in reserved:
                raise ConfigurationError(
                    f"study {self.name!r}: derived metric {name!r} collides "
                    f"with an engine metric, axis or reserved column")
            unknown_refs = expression_names(expression) - engine_metrics
            if unknown_refs:
                raise ConfigurationError(
                    f"study {self.name!r}: derived metric {name!r} references "
                    f"{sorted(unknown_refs)}, not produced by engine "
                    f"{self.engine!r} (available: {sorted(engine_metrics)})")

    # -- case expansion ------------------------------------------------------

    @property
    def axis_names(self) -> tuple[str, ...]:
        """Sweep axis names in declaration order."""
        return tuple(name for name, _ in self.axes)

    @property
    def case_count(self) -> int:
        """Number of cases (the cartesian product of axis lengths)."""
        return math.prod(len(values) for _, values in self.axes)

    def cases(self) -> list[dict]:
        """Expand the axes into the flat, ordered case-parameter list.

        Each case is ``dict(fixed) | {axis: value, ...}``; order is the
        cartesian product of the axes in declaration order (last axis
        fastest), so case index ``i`` is stable across runs, shard layouts
        and processes — the property the seeding and the results store key on.
        """
        base = dict(self.fixed)
        names = self.axis_names
        return [base | dict(zip(names, point))
                for point in product(*(values for _, values in self.axes))]

    def case_seed(self, index: int) -> int:
        """Engine seed of case ``index`` under the study's seeding policy.

        ``shared`` mode returns the study seed itself: every case's engine
        then draws the same per-trial streams (``default_rng([seed, t])``
        inside the MC/sim engines) — common random numbers across the whole
        grid.  ``per-case`` mode derives an independent stream from
        ``SeedSequence([seed, index])``.  Both depend only on the case index,
        never on the shard layout, which is what keeps results bit-identical
        across shard counts.
        """
        if self.seed_mode == "shared":
            return int(self.seed)
        state = np.random.SeedSequence([int(self.seed), int(index)])
        return int(state.generate_state(1, dtype=np.uint64)[0])

    # -- identity ------------------------------------------------------------

    @property
    def compute_hash(self) -> str:
        """SHA-256 over the fields that determine engine outputs.

        Derived metrics, the metric subset and the description are *excluded*:
        the results store keys shards by this hash, so editing a formula or a
        label never invalidates cached engine results — only changes to the
        engine, axes, fixed parameters or seeding do.
        """
        core = replace(self, derived=(), metrics=(), description="")
        return hashlib.sha256(content_token(core).encode()).hexdigest()

    def with_overrides(self, **fixed) -> "StudySpec":
        """Copy of the spec with ``fixed`` entries added/replaced.

        Axis parameters cannot be overridden this way (that would silently
        drop a sweep dimension); pass a new ``axes`` via
        :func:`dataclasses.replace` instead.
        """
        for name in fixed:
            _check_scalar(fixed[name], f"override {name!r}")
        merged = dict(self.fixed)
        merged.update(fixed)
        return replace(self, fixed=tuple(merged.items()))


# -- document loading --------------------------------------------------------

_TOP_LEVEL_KEYS = {"name", "engine", "axes", "fixed", "seed", "seed_mode",
                   "derived", "metrics", "description"}


def study_from_mapping(document: dict, source: str = "<mapping>") -> StudySpec:
    """Build a :class:`StudySpec` from a parsed YAML/TOML mapping.

    Args:
        document: The parsed top-level mapping (see ``docs/studies.md`` for
            the schema).
        source: Label used in error messages (file path or ``<text>``).

    Returns:
        The validated spec.

    Raises:
        ConfigurationError: On unknown keys, missing ``name``/``engine``/
            ``axes``, malformed axis values, or any engine-contract violation.
    """
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"{source}: study document must be a mapping, "
            f"got {type(document).__name__}")
    unknown = set(document) - _TOP_LEVEL_KEYS
    if unknown:
        raise ConfigurationError(
            f"{source}: unknown study keys {sorted(unknown)}; "
            f"accepted: {sorted(_TOP_LEVEL_KEYS)}")
    for required in ("name", "engine", "axes"):
        if required not in document:
            raise ConfigurationError(f"{source}: study needs a {required!r} key")
    axes = document["axes"]
    if not isinstance(axes, dict):
        raise ConfigurationError(
            f"{source}: 'axes' must be a mapping of parameter -> value list")
    for name, values in axes.items():
        if not isinstance(values, (list, tuple)):
            raise ConfigurationError(
                f"{source}: axis {name!r} must be a list of values, "
                f"got {type(values).__name__}")
    fixed = document.get("fixed", {})
    if not isinstance(fixed, dict):
        raise ConfigurationError(
            f"{source}: 'fixed' must be a mapping of parameter -> value")
    derived = document.get("derived", {})
    if not isinstance(derived, dict):
        raise ConfigurationError(
            f"{source}: 'derived' must be a mapping of metric -> expression")
    for name, expression in derived.items():
        if not isinstance(expression, str):
            raise ConfigurationError(
                f"{source}: derived metric {name!r} must map to an expression "
                f"string, got {type(expression).__name__}")
    metrics = document.get("metrics", [])
    if not isinstance(metrics, (list, tuple)):
        raise ConfigurationError(
            f"{source}: 'metrics' must be a list of metric names")
    seed = document.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ConfigurationError(
            f"{source}: 'seed' must be an integer, got {seed!r}")
    return StudySpec(
        name=str(document["name"]),
        engine=str(document["engine"]),
        axes=tuple((name, tuple(values)) for name, values in axes.items()),
        fixed=tuple(fixed.items()),
        seed=seed,
        seed_mode=str(document.get("seed_mode", "shared")),
        derived=tuple(derived.items()),
        metrics=tuple(str(m) for m in metrics),
        description=str(document.get("description", "")),
    )


def parse_study(text: str, format: str = "yaml",
                source: str = "<text>") -> StudySpec:
    """Parse a study document from YAML or TOML text.

    Args:
        text: The document body.
        format: ``"yaml"`` or ``"toml"``.
        source: Label used in error messages.

    Returns:
        The validated :class:`StudySpec`.
    """
    if format == "yaml":
        try:
            import yaml
        except ImportError:  # pragma: no cover - PyYAML ships with the env
            raise ConfigurationError(
                "YAML study files need the PyYAML package; install it or "
                "use the TOML format") from None
        try:
            document = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ConfigurationError(f"{source}: invalid YAML: {exc}") from None
    elif format == "toml":
        import tomllib
        try:
            document = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"{source}: invalid TOML: {exc}") from None
    else:
        raise ConfigurationError(
            f"unknown study format {format!r}; expected 'yaml' or 'toml'")
    return study_from_mapping(document, source=source)


def load_study(path: str | Path) -> StudySpec:
    """Load and validate a study file (``.yaml``/``.yml`` or ``.toml``).

    Args:
        path: Path to the study document.

    Returns:
        The validated :class:`StudySpec`.

    Raises:
        ConfigurationError: If the suffix is not a supported format or the
            document fails validation (see :func:`study_from_mapping`).
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix in (".yaml", ".yml"):
        format = "yaml"
    elif suffix == ".toml":
        format = "toml"
    else:
        raise ConfigurationError(
            f"study file {str(path)!r} must end in .yaml/.yml/.toml")
    return parse_study(path.read_text(), format=format, source=str(path))

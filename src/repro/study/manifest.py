"""Signed shard manifests: the trust boundary of distributed studies.

A worker that executes a slice of a study's shard layout
(:mod:`repro.study.distributed`, ``repro study shard``) leaves behind two
artifacts: the shard bundles in its :class:`~repro.study.results.StudyStore`
directory and one **manifest** — a JSON sidecar declaring exactly what the
worker claims to have computed:

* the study identity (name, engine, :attr:`~repro.study.spec.StudySpec.compute_hash`,
  case count, CRN seed root and seed mode, ``repro`` version);
* the **global** shard layout the slice was cut from (so a merge can prove
  every worker agreed on one layout);
* the worker's position (``worker`` of ``of``) and, per shard it owns, the
  case range, the store key and the bundle's content checksum — the very
  ``__checksum__`` :class:`~repro.scenario.cache.ArrayCache` stamped into
  the ``.npz`` at write time.

The document is **signed**: the file stores ``{"manifest": payload,
"signature": sha256(canonical-json(payload))}``.  The signature is not a
secret-key MAC — it is a tamper-*evidence* seal in the spirit of the store
checksums: a hand-edited case range, a swapped checksum or a torn write
fails verification on load (:exc:`~repro.errors.ManifestError`), and a
bundle swapped on disk without updating the manifest fails the merge's
checksum cross-check (:exc:`~repro.errors.MergeValidationError`).  Either
way the merge refuses quietly-wrong inputs instead of producing a
quietly-wrong table.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ManifestError
from repro.study.results import StudyStore
from repro.study.spec import StudySpec

__all__ = ["MANIFEST_VERSION", "ShardEntry", "ShardManifest",
           "build_manifest", "default_manifest_name", "load_manifest",
           "sign_payload", "write_manifest"]

#: Schema version of the manifest payload; bumped on incompatible change.
MANIFEST_VERSION = 1

_PAYLOAD_KEYS = {"manifest_version", "study", "engine", "compute_hash",
                 "case_count", "seed", "seed_mode", "backend", "version",
                 "worker", "of", "layout", "shards"}

_ENTRY_KEYS = {"index", "start", "stop", "key", "checksum", "rows"}


def sign_payload(payload: dict) -> str:
    """SHA-256 signature over the canonical JSON form of ``payload``.

    Canonical means ``sort_keys`` + minimal separators, so the signature is
    independent of mapping order and whitespace — the same document always
    signs identically, and any semantic edit changes the signature.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def default_manifest_name(spec: StudySpec, worker: int, of: int) -> str:
    """Conventional manifest filename of worker ``worker`` of ``of``.

    Includes the spec's hash prefix (so one directory can host slices of
    several studies) and ends in ``.json`` — outside the store's
    ``*.npz`` shard namespace.
    """
    return f"{spec.compute_hash[:40]}-manifest-w{worker:03d}of{of:03d}.json"


@dataclass(frozen=True)
class ShardEntry:
    """One shard bundle a worker claims: its range, store key and checksum.

    Attributes
    ----------
    index:
        Shard index in the global layout.
    start / stop:
        The shard's ``[start, stop)`` case range.
    key:
        The bundle's store key (:meth:`~repro.study.results.StudyStore.shard_key`).
    checksum:
        The bundle's verified ``__checksum__`` digest at manifest time.
    rows:
        Case rows in the bundle (``stop - start``).
    """

    index: int
    start: int
    stop: int
    key: str
    checksum: str
    rows: int


@dataclass(frozen=True)
class ShardManifest:
    """A worker's signed claim over one slice of a study's shard layout.

    Attributes
    ----------
    study / engine / compute_hash / case_count / seed / seed_mode / version:
        Study identity and provenance (``version`` is the ``repro``
        release that produced the bundles).
    backend:
        Resolved kernel backend the slice was computed with — merges
        refuse to mix backends, whose results agree only to tolerance.
    worker / of:
        This worker's position in the ``of``-way split.
    layout:
        The *global* shard layout ``((start, stop), ...)`` every worker of
        the split must agree on.
    shards:
        The :class:`ShardEntry` rows this worker owns, in shard order.
    """

    study: str
    engine: str
    compute_hash: str
    case_count: int
    seed: int
    seed_mode: str
    backend: str
    version: str
    worker: int
    of: int
    layout: tuple[tuple[int, int], ...]
    shards: tuple[ShardEntry, ...]

    def shard_indices(self) -> tuple[int, ...]:
        """Global layout indices of the shards this worker claims."""
        return tuple(entry.index for entry in self.shards)

    def to_payload(self) -> dict:
        """The JSON payload that gets signed and written."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "study": self.study,
            "engine": self.engine,
            "compute_hash": self.compute_hash,
            "case_count": self.case_count,
            "seed": self.seed,
            "seed_mode": self.seed_mode,
            "backend": self.backend,
            "version": self.version,
            "worker": self.worker,
            "of": self.of,
            "layout": [[start, stop] for start, stop in self.layout],
            "shards": [{"index": e.index, "start": e.start, "stop": e.stop,
                        "key": e.key, "checksum": e.checksum, "rows": e.rows}
                       for e in self.shards],
        }

    @classmethod
    def from_payload(cls, payload: dict, source: str = "<payload>"
                     ) -> "ShardManifest":
        """Validate a parsed payload into a manifest.

        Args:
            payload: The decoded ``"manifest"`` mapping.
            source: Label used in error messages (usually the file path).

        Returns:
            The validated manifest.

        Raises:
            ManifestError: On a non-mapping payload, unknown or missing
                keys, an unsupported ``manifest_version`` or malformed
                layout/shard entries.
        """
        if not isinstance(payload, dict):
            raise ManifestError(
                f"{source}: manifest payload must be a mapping, "
                f"got {type(payload).__name__}")
        unknown = set(payload) - _PAYLOAD_KEYS
        missing = _PAYLOAD_KEYS - set(payload)
        if unknown or missing:
            raise ManifestError(
                f"{source}: manifest keys mismatch — unknown "
                f"{sorted(unknown)}, missing {sorted(missing)}")
        if payload["manifest_version"] != MANIFEST_VERSION:
            raise ManifestError(
                f"{source}: unsupported manifest_version "
                f"{payload['manifest_version']!r} (this build reads "
                f"{MANIFEST_VERSION})")
        layout = payload["layout"]
        if (not isinstance(layout, list) or not layout
                or not all(isinstance(r, list) and len(r) == 2
                           and all(isinstance(v, int) for v in r)
                           for r in layout)):
            raise ManifestError(
                f"{source}: 'layout' must be a non-empty list of "
                f"[start, stop] integer pairs")
        entries = payload["shards"]
        if not isinstance(entries, list):
            raise ManifestError(f"{source}: 'shards' must be a list")
        shards = []
        for entry in entries:
            if not isinstance(entry, dict) or set(entry) != _ENTRY_KEYS:
                raise ManifestError(
                    f"{source}: each shard entry must be a mapping with "
                    f"keys {sorted(_ENTRY_KEYS)}")
            try:
                shards.append(ShardEntry(
                    index=int(entry["index"]), start=int(entry["start"]),
                    stop=int(entry["stop"]), key=str(entry["key"]),
                    checksum=str(entry["checksum"]),
                    rows=int(entry["rows"])))
            except (TypeError, ValueError) as exc:
                raise ManifestError(
                    f"{source}: malformed shard entry {entry!r}: {exc}"
                ) from None
        try:
            return cls(
                study=str(payload["study"]), engine=str(payload["engine"]),
                compute_hash=str(payload["compute_hash"]),
                case_count=int(payload["case_count"]),
                seed=int(payload["seed"]),
                seed_mode=str(payload["seed_mode"]),
                backend=str(payload["backend"]),
                version=str(payload["version"]),
                worker=int(payload["worker"]), of=int(payload["of"]),
                layout=tuple((int(s), int(e)) for s, e in layout),
                shards=tuple(shards))
        except (TypeError, ValueError) as exc:
            raise ManifestError(
                f"{source}: malformed manifest field: {exc}") from None


def build_manifest(spec: StudySpec, store: StudyStore,
                   layout: list[tuple[int, int]], shard_indices,
                   worker: int, of: int, backend: str) -> ShardManifest:
    """Assemble a manifest from the bundles a slice run left in ``store``.

    Every claimed shard is re-verified against the disk right here: its
    checksum is recomputed from the ``.npz`` bytes
    (:meth:`~repro.study.results.StudyStore.shard_checksum`), so a manifest
    never attests to a bundle that is absent, torn or already tampered.

    Args:
        spec: The study the slice belongs to.
        store: The worker's store holding the completed shard bundles.
        layout: The global shard layout of the run.
        shard_indices: Layout indices this worker owns.
        worker: Worker position in the split.
        of: Total workers in the split.
        backend: Resolved kernel backend the shards were computed with.

    Returns:
        The manifest (unsigned until :func:`write_manifest`).

    Raises:
        ManifestError: When a claimed shard bundle is missing from the
            store or fails its checksum verification.
    """
    from repro import __version__

    entries = []
    for index in sorted(int(i) for i in shard_indices):
        start, stop = layout[index]
        checksum = store.shard_checksum(spec, start, stop)
        if checksum is None:
            raise ManifestError(
                f"shard {index} (cases [{start}:{stop})) of {spec.name!r} "
                f"is missing from the store or fails its checksum — "
                f"cannot attest to it in a manifest")
        entries.append(ShardEntry(
            index=index, start=start, stop=stop,
            key=store.shard_key(spec, start, stop),
            checksum=checksum, rows=stop - start))
    return ShardManifest(
        study=spec.name, engine=spec.engine,
        compute_hash=spec.compute_hash, case_count=spec.case_count,
        seed=int(spec.seed), seed_mode=spec.seed_mode, backend=backend,
        version=__version__, worker=int(worker), of=int(of),
        layout=tuple((int(s), int(e)) for s, e in layout),
        shards=tuple(entries))


def write_manifest(manifest: ShardManifest, path: str | Path) -> Path:
    """Sign and write a manifest document.

    Args:
        manifest: The manifest to persist.
        path: Output file (parents are created).

    Returns:
        The resolved path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = manifest.to_payload()
    document = {"manifest": payload, "signature": sign_payload(payload)}
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def load_manifest(path: str | Path) -> ShardManifest:
    """Load, signature-verify and validate a manifest document.

    Args:
        path: The manifest file.

    Returns:
        The verified :class:`ShardManifest`.

    Raises:
        ManifestError: On unreadable files, invalid JSON, a missing
            ``manifest``/``signature`` envelope, a signature that does not
            match the payload (tampering or a torn write), or any payload
            schema violation.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise ManifestError(
            f"cannot read manifest {str(path)!r}: {exc}") from None
    except ValueError as exc:
        raise ManifestError(
            f"manifest {str(path)!r} is not valid JSON: {exc}") from None
    if (not isinstance(document, dict)
            or set(document) != {"manifest", "signature"}):
        raise ManifestError(
            f"manifest {str(path)!r} must be a "
            f"{{'manifest': ..., 'signature': ...}} document")
    payload = document["manifest"]
    signature = document["signature"]
    if not isinstance(payload, dict) or not isinstance(signature, str):
        raise ManifestError(
            f"manifest {str(path)!r}: envelope types are wrong "
            f"(payload must be a mapping, signature a hex string)")
    if sign_payload(payload) != signature:
        raise ManifestError(
            f"manifest {str(path)!r} fails its signature — the document "
            f"was edited or torn after signing")
    return ShardManifest.from_payload(payload, source=str(path))

"""Engine adapters: how a declarative case compiles to a batch engine.

Each adapter names the parameters a study may sweep or fix, the metric
columns it produces, and a ``runner`` that evaluates a chunk of cases through
the corresponding batch engine:

===========  ==================================================  ==========
adapter       engine entry point                                 stochastic
===========  ==================================================  ==========
``radio``     :func:`repro.radio.batch.evaluate_scenarios`       no
``solar``     :func:`repro.solar.batch.simulate_systems`         seeded
``mc``        :func:`repro.optimize.mc.outage_matrix`            seeded
``sim``       :func:`repro.simulation.batch.simulate_days`       seeded
``network``   :func:`repro.network.optimize.optimize_network`    no
===========  ==================================================  ==========

Adapters evaluate *whole shards* at once where the engine allows it (radio
stacks every scenario of the shard into one batched call; solar runs one
``simulate_systems`` pass over all cases), so the study layer inherits the
engines' vectorization instead of falling back to per-case scalar loops.

Per-process caches (Eq. (2) profiles, weather years, timetable fleets) are
module-level, so a worker process reuses computations across the shards it
executes.  Every engine value is produced by the same code path a direct
engine call uses — a study result is bit-identical to a hand-written sweep.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Mapping

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["REQUIRED", "EngineAdapter", "STUDY_ENGINES", "run_cases"]


class _Required:
    """Sentinel default for parameters a study must provide."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "REQUIRED"


#: Marks an adapter parameter that has no default.
REQUIRED = _Required()


@dataclass(frozen=True)
class EngineAdapter:
    """Declarative contract of one study engine.

    Attributes
    ----------
    name:
        Adapter id used in the study document's ``engine`` key.
    description:
        One-liner shown by ``repro study list`` and the docs.
    params:
        Mapping of accepted parameter name to default value
        (:data:`REQUIRED` for mandatory parameters).
    metrics:
        Metric column names, in output order.
    runner:
        ``runner(cases, seeds, context) -> list[dict]``: evaluates parameter
        dicts (one per case, defaults already applied) and returns one metric
        dict per case, in order.  ``seeds[i]`` is the engine seed of case
        ``i`` (see :meth:`repro.study.spec.StudySpec.case_seed`); ``context``
        optionally carries shared caches (``profile_cache``,
        ``weather_cache``).
    """

    name: str
    description: str
    params: Mapping[str, object]
    metrics: tuple[str, ...]
    runner: Callable[[list[dict], list[int], dict], list[dict]]

    @property
    def required(self) -> frozenset[str]:
        """Parameter names without defaults."""
        return frozenset(name for name, default in self.params.items()
                         if default is REQUIRED)

    def resolve(self, case: dict) -> dict:
        """Apply parameter defaults to one case dict."""
        resolved = {name: default for name, default in self.params.items()
                    if default is not REQUIRED}
        resolved.update(case)
        return resolved


def _context_profile_cache(context: dict):
    from repro.scenario.cache import ProfileCache

    cache = context.get("profile_cache")
    if cache is None:
        cache_dir = context.get("cache_dir")
        cache = _process_cache(
            ("profile", cache_dir),
            lambda: ProfileCache(maxsize=256, cache_dir=cache_dir))
    return cache


def _context_weather_cache(context: dict):
    from pathlib import Path

    from repro.solar.batch import WeatherCache

    cache = context.get("weather_cache")
    if cache is None:
        cache_dir = context.get("cache_dir")
        weather_dir = None if cache_dir is None else Path(cache_dir) / "weather"
        cache = _process_cache(
            ("weather", cache_dir),
            lambda: WeatherCache(maxsize=64, cache_dir=weather_dir))
    return cache


#: Per-process shared caches, created lazily (one ProfileCache / WeatherCache
#: per worker process and cache directory, reused across every shard the
#: worker executes).  Live cache *objects* cannot cross a process boundary
#: (they hold locks), so the runner ships only the ``cache_dir`` string and
#: workers share state through the disk layer.
_PROCESS_CACHES: dict[tuple, object] = {}


def _process_cache(key: tuple, factory):
    cache = _PROCESS_CACHES.get(key)
    if cache is None:
        cache = _PROCESS_CACHES[key] = factory()
    return cache


# -- radio: deterministic Eq. (2) grids ---------------------------------------


def _radio_scenario(case: dict):
    from repro.corridor.layout import CorridorLayout
    from repro.radio.link import LinkParams
    from repro.scenario.spec import Scenario

    link = LinkParams()
    overrides = {name: case[name] for name in
                 ("hp_eirp_dbm", "lp_eirp_dbm", "terminal_noise_figure_db",
                  "repeater_noise_figure_db")
                 if case[name] is not None}
    if overrides:
        link = replace(link, **{k: float(v) for k, v in overrides.items()})
    layout = CorridorLayout.with_uniform_repeaters(
        float(case["isd_m"]), int(case["n_repeaters"]), float(case["spacing_m"]))
    return Scenario(layout=layout, link=link,
                    resolution_m=float(case["resolution_m"]))


def _run_radio(cases: list[dict], seeds: list[int], context: dict) -> list[dict]:
    from repro.radio.batch import evaluate_scenarios

    scenarios = [_radio_scenario(case) for case in cases]
    profiles = evaluate_scenarios(scenarios, cache=_context_profile_cache(context),
                                  jobs=context.get("jobs"))
    rows = []
    for case, profile in zip(cases, profiles):
        threshold = float(case["threshold_db"])
        rows.append({
            "min_snr_db": profile.min_snr_db,
            "mean_snr_db": profile.mean_snr_db,
            "feasible": int(profile.min_snr_db >= threshold),
            "margin_db": profile.min_snr_db - threshold,
        })
    return rows


# -- solar: off-grid PV/battery balance ---------------------------------------


def _run_solar(cases: list[dict], seeds: list[int], context: dict) -> list[dict]:
    from repro.solar.batch import simulate_systems
    from repro.solar.battery import Battery
    from repro.solar.climates import LOCATIONS
    from repro.solar.offgrid import OffGridSystem
    from repro.solar.pv import PvArray

    systems = []
    for case, seed in zip(cases, seeds):
        key = str(case["location"])
        if key not in LOCATIONS:
            raise ConfigurationError(
                f"unknown location {key!r}; available: {sorted(LOCATIONS)}")
        systems.append(OffGridSystem(
            location=LOCATIONS[key],
            pv=PvArray(peak_w=float(case["pv_peak_w"]),
                       performance_ratio=float(case["performance_ratio"])),
            battery=Battery(capacity_wh=float(case["battery_wh"])),
            seed=seed,
        ))
    days = {int(case["days"]) for case in cases}
    if len(days) != 1:
        # simulate_systems shares one horizon; evaluate per unique value.
        rows: list[dict] = [None] * len(cases)  # type: ignore[list-item]
        for value in sorted(days):
            indices = [i for i, case in enumerate(cases)
                       if int(case["days"]) == value]
            sub = _run_solar([cases[i] for i in indices],
                             [seeds[i] for i in indices], context)
            for i, row in zip(indices, sub):
                rows[i] = row
        return rows
    results = simulate_systems(systems, days=days.pop(),
                               weather_cache=_context_weather_cache(context),
                               backend=context.get("backend"))
    return [{
        "zero_downtime": int(r.zero_downtime),
        "unmet_hours": r.unmet_hours,
        "unmet_wh": r.unmet_wh,
        "min_soc": r.min_soc,
        "full_battery_days_pct": r.full_battery_days_pct,
        "annual_pv_kwh": r.annual_pv_kwh,
        "annual_load_kwh": r.annual_load_kwh,
    } for r in results]


# -- mc: Monte-Carlo shadowing outage -----------------------------------------


def _run_mc(cases: list[dict], seeds: list[int], context: dict) -> list[dict]:
    from repro.optimize.mc import outage_matrix
    from repro.propagation.fading import LogNormalShadowing

    cache = _context_profile_cache(context)
    rows = []
    for case, seed in zip(cases, seeds):
        scenario = _radio_scenario(case)
        profile = cache.get_or_compute(scenario)
        shadowing = LogNormalShadowing(
            sigma_db=float(case["sigma_db"]),
            decorrelation_m=float(case["decorrelation_m"]))
        matrix = outage_matrix([profile], shadowing,
                               threshold_db=float(case["threshold_db"]),
                               trials=int(case["trials"]), seed=seed,
                               engine=str(case["engine"]),
                               backend=context.get("backend"))
        ci_low, ci_high = matrix.ci95()
        rows.append({
            "outage_probability": float(matrix.outage_probability[0]),
            "outage_ci95_low": float(ci_low[0]),
            "outage_ci95_high": float(ci_high[0]),
            "median_min_snr_db": float(matrix.quantile(0.5)[0]),
        })
    return rows


# -- sim: corridor day simulation ---------------------------------------------


#: Per-process memo of seeded timetable fleets: cells that share the traffic
#: scenario (e.g. the three policies of one demand point) reuse one fleet —
#: the same common-random-number sharing the ``sim-grid`` experiment uses.
_TIMETABLE_MEMO: OrderedDict[tuple, tuple] = OrderedDict()
_TIMETABLE_MEMO_MAX = 32


def _timetable_fleet(headway_s: float, service_hours: float, isd_m: float,
                     realizations: int, seed: int):
    from repro.traffic.timetable import day_timetables
    from repro.traffic.trains import TrafficParams

    key = (headway_s, service_hours, isd_m, realizations, seed)
    hit = _TIMETABLE_MEMO.get(key)
    if hit is not None:
        _TIMETABLE_MEMO.move_to_end(key)
        return hit
    traffic = TrafficParams(trains_per_hour=3600.0 / headway_s,
                            night_quiet_hours=24.0 - service_hours)
    fleet = (traffic, day_timetables(traffic, realizations=realizations,
                                     seed=seed, segment_length_m=isd_m))
    _TIMETABLE_MEMO[key] = fleet
    while len(_TIMETABLE_MEMO) > _TIMETABLE_MEMO_MAX:
        _TIMETABLE_MEMO.popitem(last=False)
    return fleet


def _run_sim(cases: list[dict], seeds: list[int], context: dict) -> list[dict]:
    from repro.corridor.layout import CorridorLayout
    from repro.energy.duty import EnergyParams
    from repro.energy.scenario import OperatingMode, segment_energy
    from repro.simulation.batch import simulate_days

    modes = {mode.value: mode for mode in OperatingMode}
    nan = float("nan")
    rows = []
    for case, seed in zip(cases, seeds):
        policy = str(case["policy"])
        if policy not in modes:
            raise ConfigurationError(
                f"unknown policy {policy!r}; available: {sorted(modes)}")
        headway = float(case["headway_s"])
        tpd = float(case["trains_per_day"])
        if headway <= 0 or tpd <= 0:
            raise ConfigurationError(
                f"headway_s and trains_per_day must be positive, got "
                f"({headway}, {tpd})")
        service_hours = tpd * headway / 3600.0
        if service_hours > 24.0:
            rows.append({
                "service_hours": service_hours, "feasible": 0,
                "realizations": 0, "mean_w_per_km": nan, "std_w_per_km": nan,
                "ci95_low": nan, "ci95_high": nan, "analytic_w_per_km": nan,
            })
            continue
        isd = float(case["isd_m"])
        layout = CorridorLayout.with_uniform_repeaters(
            isd, int(case["n_repeaters"]))
        traffic, timetables = _timetable_fleet(
            headway, service_hours, isd, int(case["realizations"]), seed)
        params = EnergyParams(traffic=traffic)
        sim = simulate_days(layout, mode=modes[policy], params=params,
                            timetables=timetables,
                            transition_s=float(case["transition_s"]),
                            wake_lead_m=float(case["wake_lead_m"]),
                            engine=str(case["engine"]),
                            backend=context.get("backend"))
        ci_low, ci_high = sim.ci95_w_per_km()
        rows.append({
            "service_hours": service_hours, "feasible": 1,
            "realizations": sim.realizations,
            "mean_w_per_km": sim.mean_w_per_km(),
            "std_w_per_km": sim.std_w_per_km(),
            "ci95_low": ci_low, "ci95_high": ci_high,
            "analytic_w_per_km": segment_energy(layout, modes[policy],
                                                params).w_per_km,
        })
    return rows


# -- network: corridor-graph topology optimization ----------------------------


#: Per-process memo of segment frontiers: the budget axis of a network study
#: sweeps many budgets over the *same* graph/catalog, so cells sharing the
#: frontier inputs reuse one set of arrays instead of re-running the batched
#: pass per case.
_FRONTIER_MEMO: OrderedDict[tuple, object] = OrderedDict()
_FRONTIER_MEMO_MAX = 4


def _network_frontiers(case: dict, context: dict):
    from repro.network.frontier import TechnologyCatalog, segment_frontiers
    from repro.network.presets import build_graph

    key = (str(case["graph"]), int(case["segments"]),
           float(case["demand_scale"]), str(case["technologies"]),
           float(case["min_sleep_headway_s"]), float(case["resolution_m"]),
           float(case["horizon_years"]), str(case["engine"]))
    hit = _FRONTIER_MEMO.get(key)
    if hit is not None:
        _FRONTIER_MEMO.move_to_end(key)
        return hit
    graph = build_graph(str(case["graph"]), n_segments=int(case["segments"]),
                        demand_scale=float(case["demand_scale"]))
    catalog = TechnologyCatalog.from_names(
        str(case["technologies"]),
        min_sleep_headway_s=float(case["min_sleep_headway_s"]))
    frontiers = segment_frontiers(
        graph, catalog, resolution_m=float(case["resolution_m"]),
        horizon_years=float(case["horizon_years"]),
        cache=_context_profile_cache(context), jobs=context.get("jobs"),
        engine=str(case["engine"]))
    _FRONTIER_MEMO[key] = frontiers
    while len(_FRONTIER_MEMO) > _FRONTIER_MEMO_MAX:
        _FRONTIER_MEMO.popitem(last=False)
    return frontiers


def _run_network(cases: list[dict], seeds: list[int], context: dict) -> list[dict]:
    from repro.errors import InfeasibleError
    from repro.network.optimize import optimize_network

    nan = float("nan")
    rows = []
    for case in cases:
        frontiers = _network_frontiers(case, context)
        length_km = frontiers.graph.length_km
        # Budgets are per track km (scale-invariant across graph sizes);
        # the optimizer itself takes the global totals.
        energy_budget = float(case["energy_budget_w_per_km"])
        cost_budget = float(case["cost_budget_keur_per_km"])
        min_w_per_km = frontiers.min_energy_w() / length_km
        try:
            plan = optimize_network(
                frontiers=frontiers,
                energy_budget_w=(None if energy_budget <= 0
                                 else energy_budget * length_km),
                cost_budget_eur=(None if cost_budget <= 0
                                 else cost_budget * 1e3 * length_km))
        except InfeasibleError:
            rows.append({
                "feasible": 0, "total_cost_meur": nan, "total_energy_kw": nan,
                "min_w_per_km": min_w_per_km, "mean_w_per_km": nan,
                "sleeping_segments": 0, "sleeping_fraction": nan,
                "n_conventional": 0, "n_repeater": 0, "n_mobile_relay": 0,
                "n_solar": 0,
            })
            continue
        counts = plan.technology_counts()
        rows.append({
            "feasible": 1,
            "total_cost_meur": plan.total_cost_eur / 1e6,
            "total_energy_kw": plan.total_energy_w / 1e3,
            "min_w_per_km": min_w_per_km,
            "mean_w_per_km": plan.total_energy_w / length_km,
            "sleeping_segments": plan.n_sleeping,
            "sleeping_fraction": plan.n_sleeping / frontiers.n_segments,
            "n_conventional": counts["conventional"],
            "n_repeater": counts["repeater"],
            "n_mobile_relay": counts["mobile_relay"],
            "n_solar": counts["solar"],
        })
    return rows


# -- registry -----------------------------------------------------------------

STUDY_ENGINES: dict[str, EngineAdapter] = {
    adapter.name: adapter for adapter in (
        EngineAdapter(
            name="radio",
            description="Deterministic Eq. (2) SNR grids "
                        "(repro.radio.batch.evaluate_scenarios)",
            params={
                "isd_m": REQUIRED,
                "n_repeaters": 0,
                "spacing_m": constants.LP_NODE_SPACING_M,
                "resolution_m": 1.0,
                "hp_eirp_dbm": None,
                "lp_eirp_dbm": None,
                "terminal_noise_figure_db": None,
                "repeater_noise_figure_db": None,
                "threshold_db": constants.PEAK_SNR_CRITERION_DB,
            },
            metrics=("min_snr_db", "mean_snr_db", "feasible", "margin_db"),
            runner=_run_radio,
        ),
        EngineAdapter(
            name="solar",
            description="Off-grid PV/battery yearly balance "
                        "(repro.solar.batch.simulate_systems)",
            params={
                "location": REQUIRED,
                "pv_peak_w": REQUIRED,
                "battery_wh": REQUIRED,
                "performance_ratio": 0.80,
                "days": 365,
            },
            metrics=("zero_downtime", "unmet_hours", "unmet_wh", "min_soc",
                     "full_battery_days_pct", "annual_pv_kwh",
                     "annual_load_kwh"),
            runner=_run_solar,
        ),
        EngineAdapter(
            name="mc",
            description="Monte-Carlo shadowing outage "
                        "(repro.optimize.mc.outage_matrix)",
            params={
                "isd_m": REQUIRED,
                "n_repeaters": 0,
                "spacing_m": constants.LP_NODE_SPACING_M,
                "resolution_m": 10.0,
                "hp_eirp_dbm": None,
                "lp_eirp_dbm": None,
                "terminal_noise_figure_db": None,
                "repeater_noise_figure_db": None,
                "sigma_db": 4.0,
                "decorrelation_m": 50.0,
                "trials": 100,
                "threshold_db": constants.PEAK_SNR_CRITERION_DB,
                "engine": "batched",
            },
            metrics=("outage_probability", "outage_ci95_low",
                     "outage_ci95_high", "median_min_snr_db"),
            runner=_run_mc,
        ),
        EngineAdapter(
            name="sim",
            description="Corridor day-simulation fleets "
                        "(repro.simulation.batch.simulate_days)",
            params={
                "isd_m": REQUIRED,
                "n_repeaters": 8,
                "headway_s": REQUIRED,
                "trains_per_day": REQUIRED,
                "policy": REQUIRED,
                "realizations": 25,
                "transition_s": constants.SLEEP_TRANSITION_S,
                "wake_lead_m": 50.0,
                "engine": "batch",
            },
            metrics=("service_hours", "feasible", "realizations",
                     "mean_w_per_km", "std_w_per_km", "ci95_low", "ci95_high",
                     "analytic_w_per_km"),
            runner=_run_sim,
        ),
        EngineAdapter(
            name="network",
            description="Corridor-graph topology optimization "
                        "(repro.network.optimize.optimize_network)",
            params={
                "graph": REQUIRED,
                "segments": 0,
                "demand_scale": 1.0,
                "energy_budget_w_per_km": REQUIRED,
                "cost_budget_keur_per_km": 0.0,
                "technologies": "conventional,repeater,mobile_relay",
                "min_sleep_headway_s": 300.0,
                "resolution_m": 25.0,
                "horizon_years": 10.0,
                "engine": "batched",
            },
            metrics=("feasible", "total_cost_meur", "total_energy_kw",
                     "min_w_per_km", "mean_w_per_km", "sleeping_segments",
                     "sleeping_fraction", "n_conventional", "n_repeater",
                     "n_mobile_relay", "n_solar"),
            runner=_run_network,
        ),
    )
}


def run_cases(engine: str, cases: list[dict], seeds: list[int],
              context: dict | None = None) -> list[dict]:
    """Evaluate resolved cases through an engine adapter.

    Args:
        engine: Adapter id from :data:`STUDY_ENGINES`.
        cases: Case parameter dicts (axis points merged over fixed values;
            adapter defaults are applied here).
        seeds: Engine seed per case, aligned with ``cases``.
        context: Optional shared state — ``profile_cache``, ``weather_cache``
            (both fall back to per-process module caches), ``jobs`` (radio
            thread sharding), and ``backend`` (kernel backend name forwarded
            to the stochastic engines; ``None`` resolves via
            ``REPRO_BACKEND``).  Other keys pass through untouched: the
            supervised runner ships a ``fault_plan`` mapping here
            (:mod:`repro.faults`), consumed by the worker entry point
            before this function runs.

    Returns:
        One ``{metric: value}`` dict per case, aligned with ``cases``, with
        exactly the adapter's declared metric columns.

    Raises:
        ConfigurationError: For an unknown engine or invalid case values
            (unknown location/policy, non-positive axes, ...).
    """
    adapter = STUDY_ENGINES.get(engine)
    if adapter is None:
        raise ConfigurationError(
            f"unknown study engine {engine!r}; available: {sorted(STUDY_ENGINES)}")
    if len(cases) != len(seeds):
        raise ConfigurationError(
            f"case/seed length mismatch: {len(cases)} != {len(seeds)}")
    resolved = [adapter.resolve(case) for case in cases]
    rows = adapter.runner(resolved, list(seeds), dict(context or {}))
    if len(rows) != len(cases):  # pragma: no cover - adapter contract
        raise ConfigurationError(
            f"engine {engine!r} returned {len(rows)} rows for "
            f"{len(cases)} cases")
    ordered = []
    for row in rows:
        missing = set(adapter.metrics) - set(row)
        if missing:  # pragma: no cover - adapter contract
            raise ConfigurationError(
                f"engine {engine!r} row is missing metrics {sorted(missing)}")
        ordered.append({name: row[name] for name in adapter.metrics})
    return ordered

"""Distributed study execution: shard slices, validated merges, refresh.

Three primitives take the sharded study runner beyond one process pool,
while keeping its core guarantee — the merged table is **bit-identical**
to a single-machine run — intact:

:func:`run_shard_slice` (CLI ``repro study shard --index K --of N``)
    Executes worker ``K``'s slice of the *global* shard layout into its own
    :class:`~repro.study.results.StudyStore` and signs a
    :class:`~repro.study.manifest.ShardManifest` over the result.  The
    slice is a round-robin filter over shard indices (:func:`slice_shards`)
    — never a re-layout — so every worker cuts the same
    :func:`~repro.study.runner.shard_ranges` and the CRN seeding
    (:meth:`~repro.study.spec.StudySpec.case_seed`, a pure function of the
    case index) is untouched by how the work is split.  Each slice runs
    under the full supervisor (retries, timeouts, fault plans, journal).

:func:`merge_manifests` (CLI ``repro study merge``)
    Reassembles one study from worker manifests, refusing to produce a
    table from inputs it cannot prove consistent: one spec hash, one
    layout, one backend, disjoint and complete shard coverage, bundle
    checksums matching the manifests' signed claims — each violation is a
    structured :class:`~repro.errors.MergeValidationError` naming the
    invariant (``kind``) and the evidence (``details``).  It then replays
    every worker's run journal into the merged provenance journal and
    **recomputes a deterministic sample of cases inline**, comparing
    bit-for-bit (NaN-aware) against the workers' stored rows — the CRN
    spot-check that turns "the manifests look right" into "the numbers are
    the numbers a single machine would have produced".

:func:`refresh_study` (CLI ``repro study refresh``)
    Rolling re-evaluation for periodically updated inputs (timetable /
    demand feeds): diffs per-case content fingerprints
    (:func:`case_fingerprint`) of the updated spec against the previous
    run's store, re-executes **only** the changed cases and reassembles the
    full table — O(changed), not O(grid).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.backend import resolve_backend_name
from repro.errors import (
    ConfigurationError,
    ManifestError,
    MergeValidationError,
)
from repro.study.journal import RunJournal, scan_journal
from repro.study.manifest import (
    ShardManifest,
    build_manifest,
    default_manifest_name,
    load_manifest,
    write_manifest,
)
from repro.study.results import (
    StudyStore,
    StudyTable,
    build_table,
    merge_shards,
)
from repro.study.runner import (
    DEFAULT_MAX_SHARDS,
    StudyRunReport,
    run_study,
    shard_ranges,
)
from repro.study.spec import StudySpec

__all__ = ["MergeReport", "RefreshReport", "SliceRunReport",
           "case_fingerprint", "merge_manifests", "refresh_study",
           "run_shard_slice", "slice_shards"]

#: Default number of cases the merge recomputes for the CRN spot-check.
DEFAULT_CRN_SAMPLE = 3


def slice_shards(shard_count: int, index: int, of: int) -> list[int]:
    """Round-robin slice of the shard indices owned by worker ``index``.

    Worker ``K`` of ``N`` owns every shard whose index is ``K`` modulo
    ``N`` — a partition of the *global* layout, so any ``N`` and any
    assignment of workers to machines reassembles to the same shard set.
    With more workers than shards, trailing workers own nothing (an empty
    list, which is a valid — empty — slice).

    Args:
        shard_count: Shards in the global layout.
        index: This worker's 0-based position.
        of: Total workers in the split.

    Returns:
        The sorted shard indices of the slice.
    """
    if of < 1:
        raise ConfigurationError(f"worker count must be >= 1, got {of}")
    if not 0 <= index < of:
        raise ConfigurationError(
            f"worker index must be in [0, {of}), got {index}")
    if shard_count < 1:
        raise ConfigurationError(
            f"shard_count must be >= 1, got {shard_count}")
    return [i for i in range(shard_count) if i % of == index]


def _resolve_journal(journal, store: StudyStore | None) -> RunJournal:
    if isinstance(journal, RunJournal):
        return journal
    if journal is not None:
        return RunJournal(journal)
    if store is not None and store.cache_dir is not None:
        return RunJournal(store.cache_dir / "run.jsonl")
    return RunJournal(None)


@dataclass(frozen=True)
class SliceRunReport:
    """One worker's finished slice: run report + signed manifest.

    Attributes
    ----------
    report:
        The slice's :class:`~repro.study.runner.StudyRunReport`
        (``None`` for an empty slice — more workers than shards).
    manifest:
        The signed :class:`~repro.study.manifest.ShardManifest`; covers
        only the shards that actually completed, so a partial slice run
        leaves a truthful (incomplete) manifest a retry can replace.
    manifest_path:
        Where the manifest was written.
    """

    report: StudyRunReport | None
    manifest: ShardManifest
    manifest_path: Path

    @property
    def complete(self) -> bool:
        """True when every shard of the slice completed and is attested."""
        if self.report is None:
            return True
        return (not self.report.partial
                and not self.report.failed_shards)

    def summary(self) -> str:
        """One-line slice summary for logs and the CLI."""
        state = "complete" if self.complete else "partial"
        return (f"worker {self.manifest.worker}/{self.manifest.of} of "
                f"{self.manifest.study!r}: {len(self.manifest.shards)} "
                f"shard(s) attested ({state}), backend "
                f"{self.manifest.backend}, manifest "
                f"{self.manifest_path.name}")


def run_shard_slice(spec: StudySpec, index: int, of: int, store: StudyStore,
                    *, jobs: int = 1, shards: int | None = None,
                    context: dict | None = None, retries: int = 0,
                    shard_timeout: float | None = None,
                    keep_going: bool = False,
                    progress: Callable[[int, int, str], None] | None = None,
                    journal=None, cancel: Callable[[], bool] | None = None,
                    manifest_path: str | Path | None = None,
                    force_backend: bool = False) -> SliceRunReport:
    """Execute worker ``index``'s slice of a study and sign its manifest.

    The global shard layout is ``shard_ranges(case_count, shards)`` — the
    same layout every other worker of the split derives — and this call
    runs only the :func:`slice_shards` subset, under the full supervisor
    (retries, timeouts, fault plans, journal, cancel hook).  On return the
    worker's store holds its shard bundles and the signed manifest attests
    to every one that completed.

    Args:
        spec: The validated study specification.
        index: This worker's 0-based position in the split.
        of: Total workers in the split.
        store: The worker's own store (must have a disk layer — the
            manifest attests on-disk bundles).
        jobs / shards / context / retries / shard_timeout / keep_going /
        progress / journal / cancel / force_backend:
            Forwarded to :func:`~repro.study.runner.run_study`; ``shards``
            is the **global** shard count (identical across workers).
        manifest_path: Manifest output file; defaults to
            :func:`~repro.study.manifest.default_manifest_name` inside the
            store directory.

    Returns:
        The :class:`SliceRunReport`.

    Raises:
        ConfigurationError: On an invalid split or a store without a disk
            layer (plus everything :func:`~repro.study.runner.run_study`
            raises).
        ManifestError: When a completed shard's bundle cannot be verified
            at attestation time.
    """
    if store is None or store.cache_dir is None:
        raise ConfigurationError(
            "a shard slice needs a store with a disk layer — the manifest "
            "attests to on-disk bundles")
    case_count = spec.case_count
    if shards is None:
        shards = min(case_count, DEFAULT_MAX_SHARDS)
    layout = shard_ranges(case_count, shards)
    indices = slice_shards(len(layout), index, of)
    log = _resolve_journal(journal, store)
    backend = resolve_backend_name((context or {}).get("backend"))

    report: StudyRunReport | None = None
    if indices:
        report = run_study(
            spec, jobs=jobs, shards=len(layout), store=store,
            progress=progress, context=context, retries=retries,
            shard_timeout=shard_timeout, keep_going=keep_going,
            journal=log, cancel=cancel, only_shards=indices,
            force_backend=force_backend)
    # Attest only what verifiably completed: a partial or keep_going run
    # signs a truthful subset, and the merge's coverage check reports the
    # gap as "missing" rather than trusting an optimistic claim.
    completed = [i for i in indices
                 if store.shard_checksum(spec, *layout[i]) is not None]
    manifest = build_manifest(spec, store, layout, completed,
                              worker=index, of=of, backend=backend)
    if manifest_path is None:
        manifest_path = store.cache_dir / default_manifest_name(
            spec, index, of)
    path = write_manifest(manifest, manifest_path)
    log.emit("manifest", path=str(path), worker=index, of=of,
             shards=len(manifest.shards), backend=backend)
    return SliceRunReport(report=report, manifest=manifest,
                          manifest_path=path)


# -- merge --------------------------------------------------------------------


def _same_value(a, b) -> bool:
    """Bit-for-bit equality with NaN == NaN (the infeasible-case marker)."""
    a_float = isinstance(a, (float, np.floating))
    b_float = isinstance(b, (float, np.floating))
    if a_float and b_float:
        if math.isnan(a) and math.isnan(b):
            return True
        return np.float64(a).tobytes() == np.float64(b).tobytes()
    return a == b


def _crn_sample_indices(case_count: int, sample: int) -> list[int]:
    """Deterministic evenly-spaced case sample (always includes the ends)."""
    sample = max(1, min(int(sample), case_count))
    if sample == 1:
        return [0]
    return sorted({(k * (case_count - 1)) // (sample - 1)
                   for k in range(sample)})


@dataclass(frozen=True)
class MergeReport:
    """A validated merge: the reassembled table + its provenance.

    Attributes
    ----------
    spec:
        The study the merge was validated against.
    table:
        The merged :class:`~repro.study.results.StudyTable` —
        bit-identical (NaN-aware) to a single-machine run.
    manifests:
        The verified worker manifests, in worker order.
    backend:
        The (single) kernel backend every worker used.
    crn_cases:
        Case indices the CRN spot-check recomputed inline.
    replayed_events:
        Worker journal events replayed into the merged journal.
    """

    spec: StudySpec
    table: StudyTable
    manifests: tuple[ShardManifest, ...]
    backend: str
    crn_cases: tuple[int, ...]
    replayed_events: int

    def summary(self) -> str:
        """One-line merge summary for logs and the CLI."""
        shards = sum(len(m.shards) for m in self.manifests)
        return (f"merged {self.spec.name!r}: {len(self.table)}/"
                f"{self.spec.case_count} cases from "
                f"{len(self.manifests)} worker(s), {shards} shards, "
                f"backend {self.backend}, CRN-checked cases "
                f"{list(self.crn_cases)}, {self.replayed_events} journal "
                f"events replayed")


def merge_manifests(spec: StudySpec, manifest_paths,
                    *, out_store: StudyStore | None = None,
                    journal=None, crn_sample: int = DEFAULT_CRN_SAMPLE,
                    context: dict | None = None) -> MergeReport:
    """Validate worker manifests and reassemble the single-machine table.

    Validation order (first violation wins; each raises a structured
    :class:`~repro.errors.MergeValidationError` whose ``kind`` names the
    invariant):

    1. ``spec_hash`` — every manifest must attest this spec's
       ``compute_hash`` (also case count / engine / seeding), so stale
       manifests from an earlier spec revision are refused;
    2. ``layout`` — every manifest must declare the same canonical shard
       layout, and every shard entry's range must match it;
    3. ``backend`` — all workers must have used one kernel backend (their
       results agree only to tolerance across backends), and that backend
       must be resolvable here for the CRN check;
    4. ``overlap`` / ``missing`` — shard ownership must be disjoint and
       must cover the full layout;
    5. ``checksum`` — each bundle on disk (read from the directory next to
       its manifest) must carry exactly the checksum its manifest signed;
    6. ``crn`` — a deterministic sample of cases is recomputed inline with
       the workers' backend and compared bit-for-bit (NaN-aware) against
       the stored rows.

    Args:
        spec: The study to merge (the single source of truth).
        manifest_paths: The worker manifest files; each worker's shard
            bundles (and optional ``run.jsonl``) are read from the
            manifest's directory.
        out_store: Optional store the merged shard bundles are copied
            into (becomes a normal single-machine store: resumable,
            refreshable, servable).
        journal: Merged provenance journal — a path, a
            :class:`~repro.study.journal.RunJournal`, or ``None`` to
            default to ``merge.jsonl`` in ``out_store`` (disabled without
            one).  Every worker's journal is replayed into it verbatim.
        crn_sample: Cases to recompute for the CRN spot-check (clamped to
            the case count; at least 1).
        context: Optional engine context for the spot-check recomputation
            (e.g. ``cache_dir``); its ``backend`` entry, if any, must
            match the workers' backend.

    Returns:
        The :class:`MergeReport` with the merged table.

    Raises:
        ManifestError: When a manifest is unreadable, torn or fails its
            signature.
        MergeValidationError: On any violated merge invariant (see above).
        ConfigurationError: When no manifests are given.
    """
    paths = [Path(p) for p in manifest_paths]
    if not paths:
        raise ConfigurationError("merge needs at least one manifest")
    manifests = [load_manifest(p) for p in paths]
    order = sorted(range(len(paths)), key=lambda i: manifests[i].worker)
    manifests = [manifests[i] for i in order]
    paths = [paths[i] for i in order]

    if isinstance(journal, RunJournal):
        log = journal
    elif journal is not None:
        log = RunJournal(journal)
    elif out_store is not None and out_store.cache_dir is not None:
        log = RunJournal(out_store.cache_dir / "merge.jsonl")
    else:
        log = RunJournal(None)
    t0 = time.monotonic()
    log.emit("merge_start", study=spec.name, compute_hash=spec.compute_hash,
             manifests=len(manifests),
             shards=sum(len(m.shards) for m in manifests))

    # 1. spec identity — refuse stale or foreign manifests.
    for manifest, path in zip(manifests, paths):
        stale = {}
        if manifest.compute_hash != spec.compute_hash:
            stale["compute_hash"] = manifest.compute_hash
        if manifest.case_count != spec.case_count:
            stale["case_count"] = manifest.case_count
        if manifest.engine != spec.engine:
            stale["engine"] = manifest.engine
        if manifest.seed != int(spec.seed) or manifest.seed_mode != spec.seed_mode:
            stale["seeding"] = [manifest.seed, manifest.seed_mode]
        if stale:
            raise MergeValidationError(
                f"manifest {path.name} (worker {manifest.worker}) attests "
                f"a different study revision than the merge spec "
                f"{spec.name!r} — fields {sorted(stale)} disagree (a stale "
                f"manifest from before a spec change?)",
                kind="spec_hash", manifest=str(path),
                expected=spec.compute_hash, **stale)

    # 2. one canonical layout, and every entry consistent with it.
    layout = manifests[0].layout
    canonical = tuple(shard_ranges(spec.case_count, len(layout)))
    if layout != canonical:
        raise MergeValidationError(
            f"manifest {paths[0].name} declares a non-canonical "
            f"{len(layout)}-shard layout for {spec.case_count} cases",
            kind="layout", declared=[list(r) for r in layout],
            canonical=[list(r) for r in canonical])
    for manifest, path in zip(manifests, paths):
        if manifest.layout != layout:
            raise MergeValidationError(
                f"manifest {path.name} (worker {manifest.worker}) declares "
                f"a different shard layout than worker "
                f"{manifests[0].worker} — the split never agreed on one "
                f"layout",
                kind="layout", manifest=str(path),
                declared=[list(r) for r in manifest.layout],
                expected=[list(r) for r in layout])
        for entry in manifest.shards:
            if (not 0 <= entry.index < len(layout)
                    or layout[entry.index] != (entry.start, entry.stop)):
                raise MergeValidationError(
                    f"manifest {path.name}: shard entry {entry.index} "
                    f"claims cases [{entry.start}:{entry.stop}), which is "
                    f"not range {entry.index} of the declared layout",
                    kind="layout", manifest=str(path), shard=entry.index,
                    claimed=[entry.start, entry.stop])

    # 3. one backend, resolvable here.
    backends = sorted({m.backend for m in manifests})
    if len(backends) > 1:
        raise MergeValidationError(
            f"workers used different kernel backends {backends}; their "
            f"results agree only to tolerance, so the merge would not be "
            f"bit-identical to any single-machine run — recompute the "
            f"minority slice under one backend",
            kind="backend", backends=backends)
    requested = (context or {}).get("backend")
    if requested is not None and requested != backends[0]:
        raise MergeValidationError(
            f"merge context requests backend {requested!r} but every "
            f"worker computed with {backends[0]!r}",
            kind="backend", backends=backends, requested=requested)
    try:
        backend = resolve_backend_name(backends[0])
    except ConfigurationError as exc:
        raise MergeValidationError(
            f"workers' backend {backends[0]!r} is not available for the "
            f"CRN spot-check on this machine: {exc}",
            kind="backend", backends=backends) from None

    # 4. disjoint, complete coverage of the layout.
    owners: dict[int, int] = {}
    for manifest in manifests:
        for entry in manifest.shards:
            if entry.index in owners:
                raise MergeValidationError(
                    f"shard {entry.index} (cases "
                    f"[{entry.start}:{entry.stop})) is claimed by both "
                    f"worker {owners[entry.index]} and worker "
                    f"{manifest.worker}",
                    kind="overlap", shard=entry.index,
                    workers=[owners[entry.index], manifest.worker])
            owners[entry.index] = manifest.worker
    missing = sorted(set(range(len(layout))) - set(owners))
    if missing:
        raise MergeValidationError(
            f"no manifest covers shard(s) {missing} of the "
            f"{len(layout)}-shard layout — the worker set is incomplete "
            f"(a worker failed, or its manifest was not collected)",
            kind="missing", shards=missing,
            ranges=[list(layout[i]) for i in missing])

    # 5. bundles on disk match the signed claims; collect the raw tables.
    shard_tables = []
    stores: dict[int, StudyStore] = {}
    case_owner: dict[int, int] = {}
    for manifest, path in zip(manifests, paths):
        worker_store = StudyStore(maxsize=max(1, len(manifest.shards) or 1),
                                  cache_dir=path.parent)
        stores[manifest.worker] = worker_store
        for entry in manifest.shards:
            actual = worker_store.shard_checksum(spec, entry.start,
                                                 entry.stop)
            if actual != entry.checksum:
                raise MergeValidationError(
                    f"shard {entry.index} of worker {manifest.worker}: "
                    f"bundle {entry.key}.npz "
                    f"{'is missing or unreadable' if actual is None else 'does not match the signed checksum'} "
                    f"— the store was modified after the manifest signed it",
                    kind="checksum", manifest=str(path), shard=entry.index,
                    expected=entry.checksum, actual=actual)
            table = worker_store.get_shard(spec, entry.start, entry.stop)
            if table is None:  # pragma: no cover - checksum just verified
                raise MergeValidationError(
                    f"shard {entry.index} of worker {manifest.worker} "
                    f"verified but failed to load",
                    kind="checksum", shard=entry.index)
            shard_tables.append(table)
            for case in range(entry.start, entry.stop):
                case_owner[case] = manifest.worker

    # Replay every worker's journal into the merged provenance journal.
    replayed = 0
    for manifest, path in zip(manifests, paths):
        events, _ = scan_journal(path.parent / "run.jsonl")
        log.emit("worker_replay", worker=manifest.worker,
                 source=str(path.parent / "run.jsonl"), events=len(events))
        for record in events:
            log.append(record)
        replayed += len(events)

    raw = merge_shards(shard_tables)

    # 6. CRN spot-check: recompute a deterministic case sample inline and
    # compare bit-for-bit against what the workers stored.
    from repro.study.engines import STUDY_ENGINES, run_cases

    metrics = list(STUDY_ENGINES[spec.engine].metrics)
    sample = _crn_sample_indices(spec.case_count, crn_sample)
    log.emit("merge_crn_check", sampled=len(sample), cases=sample,
             backends=backends)
    cases = spec.cases()
    check_context = dict(context or {})
    check_context["backend"] = backend
    row_of = {int(c): r for r, c in enumerate(raw["case"])}
    recomputed = run_cases(spec.engine, [cases[i] for i in sample],
                           [spec.case_seed(i) for i in sample],
                           context=check_context)
    for i, fresh in zip(sample, recomputed):
        stored_row = {m: raw[m][row_of[i]] for m in metrics}
        for metric in metrics:
            if not _same_value(stored_row[metric], fresh[metric]):
                raise MergeValidationError(
                    f"CRN invariance violated at case {i}, metric "
                    f"{metric!r}: worker {case_owner[i]} "
                    f"stored {stored_row[metric]!r} but an inline "
                    f"recomputation under backend {backend!r} produced "
                    f"{fresh[metric]!r} — the worker's environment "
                    f"diverged from this one",
                    kind="crn", case=i, metric=metric,
                    worker=case_owner[i],
                    stored=stored_row[metric], recomputed=fresh[metric])

    # Everything proved out: copy bundles into the merged store (making it
    # a normal single-machine store) and build the final table.
    if out_store is not None:
        for manifest in manifests:
            worker_store = stores[manifest.worker]
            for entry in manifest.shards:
                table = worker_store.get_shard(spec, entry.start, entry.stop)
                out_store.put_shard(spec, entry.start, entry.stop, table)
        from repro import __version__
        out_store.put_run_metadata(spec, {
            "study": spec.name, "compute_hash": spec.compute_hash,
            "backend": backend, "version": __version__})

    table = build_table(spec, raw)
    log.emit("merge_end", rows=len(table),
             shards=sum(len(m.shards) for m in manifests),
             workers=len(manifests), wall_s=time.monotonic() - t0)
    return MergeReport(spec=spec, table=table, manifests=tuple(manifests),
                       backend=backend, crn_cases=tuple(sample),
                       replayed_events=replayed)


# -- rolling re-evaluation ----------------------------------------------------


def case_fingerprint(spec: StudySpec, index: int,
                     case: dict | None = None) -> str:
    """Content fingerprint of one case: parameters + engine + CRN seed.

    Two cases with the same fingerprint are guaranteed to produce
    bit-identical engine rows (same resolved parameters, same engine, same
    seed), regardless of their position in their respective studies —
    which is exactly the reuse criterion of :func:`refresh_study`.

    Args:
        spec: The study the case belongs to.
        index: The case index (enters through
            :meth:`~repro.study.spec.StudySpec.case_seed`).
        case: The resolved case parameters; looked up from
            ``spec.cases()`` when omitted (pass it in loops — the lookup
            expands the whole grid).

    Returns:
        A SHA-256 hex digest.
    """
    import hashlib

    from repro.scenario.spec import content_token

    if case is None:
        case = spec.cases()[index]
    token = content_token((spec.engine, tuple(sorted(case.items())),
                           spec.case_seed(index)))
    return hashlib.sha256(token.encode()).hexdigest()


@dataclass(frozen=True)
class RefreshReport:
    """A finished rolling re-evaluation: the new table + the diff.

    Attributes
    ----------
    spec / previous:
        The updated and the superseded study specification.
    table:
        The full table of the updated spec.
    changed:
        Case indices (of the updated spec) that were actually recomputed.
    reused:
        Cases copied verbatim from the previous run's store.
    """

    spec: StudySpec
    previous: StudySpec
    table: StudyTable
    changed: tuple[int, ...]
    reused: int

    def summary(self) -> str:
        """One-line refresh summary for logs and the CLI."""
        return (f"refreshed {self.spec.name!r}: {len(self.table)} cases "
                f"({len(self.changed)} recomputed, {self.reused} reused "
                f"from the previous run)")


def refresh_study(spec: StudySpec, previous: StudySpec, store: StudyStore,
                  *, context: dict | None = None,
                  shards: int | None = None,
                  journal=None,
                  force_backend: bool = False,
                  progress: Callable[[int, int, str], None] | None = None
                  ) -> RefreshReport:
    """Re-evaluate an updated spec, recomputing only hash-changed cases.

    For every case of the updated ``spec``, its :func:`case_fingerprint`
    is looked up among the fingerprints of ``previous``'s cases; matches
    are copied verbatim from the previous run's stored shards (bit-exact —
    the fingerprint proves the engine inputs are identical), and only the
    remainder is executed.  The result is written to ``store`` as a
    normal shard set of the updated spec (resumable, mergeable,
    refreshable again), so a periodic feed update costs O(changed cases)
    instead of O(grid).

    Args:
        spec: The updated study specification.
        previous: The specification whose results already live in
            ``store`` (a differing engine or seeding simply matches no
            fingerprints and recomputes everything).
        store: The store holding the previous run's shards; receives the
            updated spec's shards.
        context: Optional engine context (``backend`` etc.).
        shards: Shard count for the updated spec's layout (defaults like
            :func:`~repro.study.runner.run_study`).
        journal: JSONL journal — a path, a
            :class:`~repro.study.journal.RunJournal`, or ``None`` to
            default to ``run.jsonl`` in the store directory.
        force_backend: Accept a kernel backend differing from the one
            recorded for the previous run (the reused rows would then mix
            backends with the recomputed ones — normally refused).
        progress: Optional ``progress(done, total, label)`` callback
            (fires once after reuse and once per recomputed chunk).

    Returns:
        The :class:`RefreshReport` with the full updated table.

    Raises:
        ConfigurationError: When the store has no disk layer, or the
            resolved backend differs from the previous run's recorded one
            (without ``force_backend``).
    """
    if store is None or store.cache_dir is None:
        raise ConfigurationError(
            "refresh needs a store with a disk layer — it diffs against "
            "the previous run's persisted shards")
    context = dict(context or {})
    backend = resolve_backend_name(context.get("backend"))
    recorded = (store.run_metadata(previous) or {}).get("backend")
    if (recorded is not None and recorded != backend
            and not force_backend):
        raise ConfigurationError(
            f"previous run of {previous.name!r} was computed with backend "
            f"{recorded!r}, but this refresh resolves to {backend!r}; "
            f"reusing its rows would mix backends — rerun with the "
            f"recorded backend or pass --force to accept the mix")
    context["backend"] = backend

    log = _resolve_journal(journal, store)
    t0 = time.monotonic()
    log.emit("refresh_start", study=spec.name,
             compute_hash=spec.compute_hash,
             previous_hash=previous.compute_hash, cases=spec.case_count)

    from repro.study.engines import STUDY_ENGINES, run_cases

    metrics = list(STUDY_ENGINES[spec.engine].metrics)

    # Index the previous run's rows by content fingerprint.
    previous_rows: dict[str, dict] = {}
    prev_cases = previous.cases()
    for start, stop in store.stored_ranges(previous):
        shard = store.get_shard(previous, start, stop)
        if shard is None:
            continue
        for r, case_index in enumerate(shard["case"]):
            case_index = int(case_index)
            if not 0 <= case_index < len(prev_cases):
                continue
            row = {m: shard[m][r] for m in metrics if m in shard}
            if len(row) != len(metrics):
                continue
            fingerprint = case_fingerprint(previous, case_index,
                                           prev_cases[case_index])
            previous_rows[fingerprint] = row

    # Diff the updated grid against it.
    cases = spec.cases()
    rows: dict[int, dict] = {}
    changed: list[int] = []
    for i, case in enumerate(cases):
        row = previous_rows.get(case_fingerprint(spec, i, case))
        if row is not None:
            rows[i] = row
        else:
            changed.append(i)
    reused = len(rows)
    if progress is not None and reused:
        progress(reused, spec.case_count,
                 f"{reused} cases reused from the previous run")

    # Recompute only the changed cases.
    if changed:
        fresh = run_cases(spec.engine, [cases[i] for i in changed],
                          [spec.case_seed(i) for i in changed],
                          context=context)
        for i, row in zip(changed, fresh):
            rows[i] = {m: row[m] for m in metrics}
        if progress is not None:
            progress(spec.case_count, spec.case_count,
                     f"{len(changed)} changed cases recomputed")

    # Persist as a normal shard set of the updated spec.
    if shards is None:
        shards = min(spec.case_count, DEFAULT_MAX_SHARDS)
    layout = shard_ranges(spec.case_count, shards)
    shard_tables = []
    for start, stop in layout:
        shard = {"case": list(range(start, stop))}
        for metric in metrics:
            shard[metric] = [rows[i][metric] for i in range(start, stop)]
        store.put_shard(spec, start, stop, shard)
        shard_tables.append(shard)
    from repro import __version__
    store.put_run_metadata(spec, {
        "study": spec.name, "compute_hash": spec.compute_hash,
        "backend": backend, "version": __version__})

    table = build_table(spec, merge_shards(shard_tables))
    log.emit("refresh_end", changed=len(changed), reused=reused,
             rows=len(table), wall_s=time.monotonic() - t0)
    return RefreshReport(spec=spec, previous=previous, table=table,
                         changed=tuple(changed), reused=reused)

"""Safe arithmetic expressions for derived study metrics.

A :class:`~repro.study.spec.StudySpec` may declare *derived metrics* — small
formulas over the engine's metric columns, evaluated per case after the engine
runs (e.g. ``bias_pct: 100 * (mean_w_per_km / analytic_w_per_km - 1)``).

The evaluator compiles the formula through the :mod:`ast` module and walks a
whitelist of node types (arithmetic, comparisons, conditional expressions and
a fixed function table), so a study file can never execute arbitrary code:
attribute access, subscripts, lambdas, imports and unknown function names all
raise :class:`~repro.errors.ConfigurationError` at *load* time, before any
engine runs.
"""

from __future__ import annotations

import ast
import math
from typing import Callable, Mapping

from repro.errors import ConfigurationError

__all__ = ["ALLOWED_FUNCTIONS", "compile_expression", "expression_names"]

#: Function table available inside derived-metric expressions.
ALLOWED_FUNCTIONS: dict[str, Callable] = {
    "abs": abs,
    "min": min,
    "max": max,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "log10": math.log10,
    "floor": math.floor,
    "ceil": math.ceil,
}

_BINARY_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}

_UNARY_OPS = {
    ast.UAdd: lambda a: +a,
    ast.USub: lambda a: -a,
    ast.Not: lambda a: not a,
}

_COMPARE_OPS = {
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
}


def _validate(node: ast.AST, expression: str) -> None:
    """Reject any AST node outside the arithmetic whitelist."""
    for child in ast.walk(node):
        if isinstance(child, (ast.Expression, ast.Name, ast.Load,
                              ast.IfExp, ast.BoolOp, ast.And, ast.Or)):
            continue
        if isinstance(child, ast.Constant):
            if not isinstance(child.value, (int, float, bool)):
                raise ConfigurationError(
                    f"derived expression {expression!r}: only numeric "
                    f"constants are allowed, got {child.value!r}")
            continue
        if isinstance(child, ast.BinOp) and type(child.op) in _BINARY_OPS:
            continue
        if isinstance(child, ast.UnaryOp) and type(child.op) in _UNARY_OPS:
            continue
        if isinstance(child, ast.Compare):
            if all(type(op) in _COMPARE_OPS for op in child.ops):
                continue
            raise ConfigurationError(
                f"derived expression {expression!r}: unsupported comparison")
        if isinstance(child, ast.Call):
            if (isinstance(child.func, ast.Name)
                    and child.func.id in ALLOWED_FUNCTIONS
                    and not child.keywords):
                continue
            name = getattr(getattr(child, "func", None), "id", "<expr>")
            raise ConfigurationError(
                f"derived expression {expression!r}: function {name!r} is not "
                f"allowed; available: {sorted(ALLOWED_FUNCTIONS)}")
        if isinstance(child, (ast.operator, ast.unaryop, ast.cmpop)):
            if (type(child) in _BINARY_OPS or type(child) in _UNARY_OPS
                    or type(child) in _COMPARE_OPS):
                continue
            raise ConfigurationError(
                f"derived expression {expression!r}: operator "
                f"{type(child).__name__} is not allowed")
        raise ConfigurationError(
            f"derived expression {expression!r}: {type(child).__name__} "
            f"syntax is not allowed (plain arithmetic over metric names only)")


def _evaluate(node: ast.AST, env: Mapping[str, object], expression: str):
    if isinstance(node, ast.Expression):
        return _evaluate(node.body, env, expression)
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        try:
            return env[node.id]
        except KeyError:
            raise ConfigurationError(
                f"derived expression {expression!r}: unknown name {node.id!r}; "
                f"available metrics: {sorted(env)}") from None
    if isinstance(node, ast.BinOp):
        return _BINARY_OPS[type(node.op)](
            _evaluate(node.left, env, expression),
            _evaluate(node.right, env, expression))
    if isinstance(node, ast.UnaryOp):
        return _UNARY_OPS[type(node.op)](_evaluate(node.operand, env, expression))
    if isinstance(node, ast.Compare):
        left = _evaluate(node.left, env, expression)
        for op, comparator in zip(node.ops, node.comparators):
            right = _evaluate(comparator, env, expression)
            if not _COMPARE_OPS[type(op)](left, right):
                return False
            left = right
        return True
    if isinstance(node, ast.BoolOp):
        if isinstance(node.op, ast.And):
            result = True
            for value in node.values:
                result = _evaluate(value, env, expression)
                if not result:
                    return result
            return result
        result = False
        for value in node.values:
            result = _evaluate(value, env, expression)
            if result:
                return result
        return result
    if isinstance(node, ast.IfExp):
        if _evaluate(node.test, env, expression):
            return _evaluate(node.body, env, expression)
        return _evaluate(node.orelse, env, expression)
    if isinstance(node, ast.Call):
        args = [_evaluate(a, env, expression) for a in node.args]
        return ALLOWED_FUNCTIONS[node.func.id](*args)
    raise ConfigurationError(  # pragma: no cover - _validate rejects these
        f"derived expression {expression!r}: cannot evaluate "
        f"{type(node).__name__}")


def compile_expression(expression: str) -> Callable[[Mapping[str, object]], object]:
    """Compile a derived-metric formula into an evaluator.

    Args:
        expression: Arithmetic formula over metric names, e.g.
            ``"100 * (mean_w_per_km / analytic_w_per_km - 1)"``.  Supported
            syntax: ``+ - * / // % **``, comparisons, ``and``/``or``/``not``,
            conditional expressions (``a if c else b``) and the functions in
            :data:`ALLOWED_FUNCTIONS`.

    Returns:
        A callable mapping a ``{metric_name: value}`` environment to the
        expression value.  Evaluation errors on missing names raise
        :class:`~repro.errors.ConfigurationError`; NaN inputs propagate.

    Raises:
        ConfigurationError: If the expression does not parse or uses syntax
            outside the whitelist (checked eagerly, at compile time).
    """
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise ConfigurationError(
            f"derived expression {expression!r} does not parse: {exc}") from None
    _validate(tree, expression)

    def evaluate(env: Mapping[str, object]):
        return _evaluate(tree, env, expression)

    return evaluate


def expression_names(expression: str) -> frozenset[str]:
    """Metric names a compiled expression reads (for load-time validation)."""
    tree = ast.parse(expression, mode="eval")
    _validate(tree, expression)
    return frozenset(node.id for node in ast.walk(tree)
                     if isinstance(node, ast.Name)
                     and node.id not in ALLOWED_FUNCTIONS)

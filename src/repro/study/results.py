"""Unified study results: tidy tables, CSV/JSON writers, shard store.

A study run produces one :class:`StudyTable` — a column-oriented table with
one row per case, carrying the case index, every axis value and every metric
(engine metrics, optionally filtered, plus derived metrics).  The table
writes as

* **long** (tidy) CSV — one row per ``(case, metric)`` with per-axis columns,
  the layout downstream dataframe tooling melts/pivots for free;
* **wide** CSV — one row per case, one column per metric;
* JSON — a provenance document (spec echo + wide records).

:class:`StudyStore` is the disk layer of the sharded runner: each completed
shard's raw engine metrics persist as one checksummed ``.npz`` bundle (the
same atomic write-then-rename :class:`~repro.scenario.cache.ArrayCache`
machinery as the profile and weather caches), keyed by the spec's
:attr:`~repro.study.spec.StudySpec.compute_hash` and the shard's case range —
so an interrupted run resumes from its completed shards, and the merged table
is bit-identical to an uninterrupted run.  Corrupt or truncated bundles (a
killed pre-hardening writer, bit rot, injected faults) are detected by the
checksum, quarantined into a sidecar directory and recomputed instead of
poisoning the resume.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.reporting.series import write_csv
from repro.reporting.tables import format_table
from repro.scenario.cache import ArrayCache
from repro.study.expressions import compile_expression
from repro.study.spec import StudySpec

__all__ = ["ShardTable", "StudyTable", "StudyStore", "build_table",
           "merge_shards"]

#: Raw per-shard payload: ``{"case": [...], metric: [...], ...}`` columns.
ShardTable = dict


@dataclass(frozen=True)
class StudyTable:
    """Column-oriented study results: one row per evaluated case.

    Attributes
    ----------
    name / engine:
        Provenance echoed from the :class:`~repro.study.spec.StudySpec`.
    axis_names:
        Sweep axis column names, in declaration order.
    metric_names:
        Metric column names (filtered engine metrics + derived), in order.
    columns:
        ``{"case": [...], <axis>: [...], <metric>: [...]}`` — equal-length
        lists; ``case`` is the stable case index within the study.
    """

    name: str
    engine: str
    axis_names: tuple[str, ...]
    metric_names: tuple[str, ...]
    columns: dict

    def __post_init__(self) -> None:
        lengths = {name: len(values) for name, values in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise ConfigurationError(f"column lengths differ: {lengths}")

    def __len__(self) -> int:
        return len(self.columns["case"])

    # -- layouts -------------------------------------------------------------

    def wide(self) -> dict:
        """The per-case (wide) column mapping, ordered case/axes/metrics."""
        names = ("case",) + self.axis_names + self.metric_names
        return {name: list(self.columns[name]) for name in names}

    def long(self) -> dict:
        """Tidy long-format columns: one row per ``(case, metric)``.

        Columns: ``case``, every axis, ``metric`` (the metric name) and
        ``value``.  Metric order cycles fastest, so all metrics of one case
        are adjacent — the layout that melts cleanly into dataframes.
        """
        n = len(self)
        repeat = len(self.metric_names)
        out = {"case": [c for c in self.columns["case"] for _ in range(repeat)]}
        for axis in self.axis_names:
            out[axis] = [v for v in self.columns[axis] for _ in range(repeat)]
        out["metric"] = list(self.metric_names) * n
        out["value"] = [self.columns[m][i]
                        for i in range(n) for m in self.metric_names]
        return out

    # -- writers -------------------------------------------------------------

    def write_csv(self, path: str | Path, layout: str = "long") -> Path:
        """Write the table as CSV.

        Args:
            path: Output file (parent directories are created).
            layout: ``"long"`` (tidy, default) or ``"wide"``.

        Returns:
            The resolved path.
        """
        if layout == "long":
            return write_csv(path, self.long())
        if layout == "wide":
            return write_csv(path, self.wide())
        raise ConfigurationError(
            f"unknown CSV layout {layout!r}; expected 'long' or 'wide'")

    def to_document(self, metadata: dict | None = None) -> dict:
        """The JSON-ready provenance document (study id + wide records).

        The exact structure :meth:`write_json` persists — also what the
        scenario-planning service (:mod:`repro.service`) returns from its
        result endpoint, so a CLI ``--json`` file and an HTTP response body
        for the same study are interchangeable.  NaN cells (infeasible
        cases) become ``None`` so the document is strict JSON.

        Args:
            metadata: Optional mapping embedded verbatim under a
                ``"metadata"`` key (e.g. the resolved kernel backend).

        Returns:
            A plain dict with ``study``/``engine``/``axes``/``metrics``/
            ``rows`` keys.
        """
        wide = self.wide()
        names = list(wide)
        rows = [{name: _json_cell(wide[name][i]) for name in names}
                for i in range(len(self))]
        document = {
            "study": self.name,
            "engine": self.engine,
            "axes": list(self.axis_names),
            "metrics": list(self.metric_names),
            "rows": rows,
        }
        if metadata:
            document["metadata"] = dict(metadata)
        return document

    def write_json(self, path: str | Path, metadata: dict | None = None) -> Path:
        """Write a JSON provenance document (study id + wide records).

        NaN cells (infeasible cases) are serialized as ``null`` so the output
        is strict JSON.  ``metadata`` (e.g. the resolved kernel backend)
        is embedded verbatim under a ``"metadata"`` key when given (see
        :meth:`to_document`).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = self.to_document(metadata)
        path.write_text(json.dumps(document, indent=2) + "\n")
        return path

    # -- display -------------------------------------------------------------

    def table(self, limit: int = 20) -> str:
        """Formatted preview of the first ``limit`` rows (wide layout)."""
        wide = self.wide()
        names = list(wide)
        shown = min(len(self), limit)
        rows = [[wide[name][i] for name in names] for i in range(shown)]
        suffix = "" if shown == len(self) else f" (first {shown} of {len(self)})"
        return format_table(
            names, rows,
            title=f"study {self.name}: {len(self)} cases, "
                  f"{self.engine} engine{suffix}")


def _json_cell(value):
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


# -- assembly -----------------------------------------------------------------


def merge_shards(shards: list[ShardTable]) -> ShardTable:
    """Concatenate raw shard tables in case order.

    Args:
        shards: Shard payloads (each with a ``case`` column); may arrive in
            any completion order.

    Returns:
        One raw table sorted by first case index of each shard.

    Raises:
        ConfigurationError: If shard column sets disagree or case ranges
            overlap.
    """
    if not shards:
        return {"case": []}
    ordered = sorted((s for s in shards if s["case"]),
                     key=lambda s: s["case"][0])
    if not ordered:
        return {name: [] for name in shards[0]}
    names = list(ordered[0])
    merged: ShardTable = {name: [] for name in names}
    last_case = -1
    for shard in ordered:
        if list(shard) != names:
            raise ConfigurationError(
                f"shard columns differ: {list(shard)} != {names}")
        if shard["case"][0] <= last_case:
            raise ConfigurationError(
                f"shard case ranges overlap at case {shard['case'][0]}")
        last_case = shard["case"][-1]
        for name in names:
            merged[name].extend(shard[name])
    return merged


def build_table(spec: StudySpec, raw: ShardTable) -> StudyTable:
    """Turn merged raw engine metrics into the final :class:`StudyTable`.

    Derived metrics are evaluated here (per case, over the raw metric
    environment) and the optional ``metrics`` subset filter is applied — both
    *after* the store layer, so editing a formula or the filter reuses cached
    engine results.

    Args:
        spec: The study the raw rows belong to.
        raw: Merged raw columns (``case`` + every engine metric).

    Returns:
        The final table with axis columns attached.
    """
    from repro.study.engines import STUDY_ENGINES

    adapter = STUDY_ENGINES[spec.engine]
    cases = spec.cases()
    case_indices = [int(c) for c in raw["case"]]
    kept = spec.metrics or adapter.metrics
    derived = [(name, compile_expression(expression))
               for name, expression in spec.derived]

    columns: dict = {"case": case_indices}
    for axis in spec.axis_names:
        columns[axis] = [cases[i][axis] for i in case_indices]
    for metric in kept:
        # A fully empty merge (e.g. max_shards=0) carries no metric columns.
        columns[metric] = list(raw[metric]) if case_indices else []
    if derived:
        env_rows = [{m: raw[m][r] for m in adapter.metrics}
                    for r in range(len(case_indices))]
        for name, evaluate in derived:
            columns[name] = [evaluate(env) for env in env_rows]
    return StudyTable(
        name=spec.name,
        engine=spec.engine,
        axis_names=spec.axis_names,
        metric_names=tuple(kept) + tuple(name for name, _ in spec.derived),
        columns=columns,
    )


# -- disk layer ---------------------------------------------------------------


class StudyStore(ArrayCache):
    """LRU + disk memo of raw shard tables, keyed by (spec, case range).

    Values are :data:`ShardTable` column mappings; numeric columns persist as
    float/int arrays, string columns as unicode arrays.  The round trip is
    exact (float64 bits, int, str), so a resumed run's merged table is
    bit-identical to an uninterrupted one.
    """

    def _pack(self, value: ShardTable) -> dict[str, np.ndarray]:
        arrays = {"__columns__": np.array(list(value), dtype=np.str_)}
        for i, (name, column) in enumerate(value.items()):
            arr = np.asarray(column)
            if arr.dtype == object or arr.dtype.kind not in "iufUSb":
                arr = np.array([str(v) for v in column], dtype=np.str_)
            arrays[f"col{i}"] = arr
        return arrays

    def _unpack(self, arrays: dict[str, np.ndarray]) -> ShardTable:
        names = [str(n) for n in arrays["__columns__"].tolist()]
        return {name: arrays[f"col{i}"].tolist()
                for i, name in enumerate(names)}

    @staticmethod
    def shard_key(spec: StudySpec, start: int, stop: int) -> str:
        """Store key of the ``[start, stop)`` case range of ``spec``."""
        return f"{spec.compute_hash[:40]}-{start:06d}-{stop:06d}"

    def get_shard(self, spec: StudySpec, start: int, stop: int) -> ShardTable | None:
        """Cached shard table, or ``None`` when the range was never stored."""
        return self.get_by_hash(self.shard_key(spec, start, stop))

    def put_shard(self, spec: StudySpec, start: int, stop: int,
                  value: ShardTable) -> None:
        """Persist one completed shard's raw table."""
        self.put_by_hash(self.shard_key(spec, start, stop), value)

    def shard_checksum(self, spec: StudySpec, start: int, stop: int) -> str | None:
        """Verified bundle checksum of the ``[start, stop)`` shard, if stored.

        The digest is the same ``__checksum__`` every bundle carries on
        disk; shard manifests record it per case range so a merge can
        detect tampering without trusting the worker.  Returns ``None``
        when the shard is absent, the store has no disk layer, or the file
        fails verification (see :meth:`~repro.scenario.cache.ArrayCache.stored_checksum`).
        """
        return self.stored_checksum(self.shard_key(spec, start, stop))

    def _metadata_path(self, spec: StudySpec) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.compute_hash[:40]}-meta.json"

    def run_metadata(self, spec: StudySpec) -> dict | None:
        """The run metadata recorded for ``spec``, or ``None``.

        The runner persists a small JSON sidecar per spec (currently the
        resolved kernel backend plus provenance) so a resume can detect
        that it is about to compute new shards under different settings
        than the shards already in the store.

        Args:
            spec: The study whose metadata to read.

        Returns:
            The recorded mapping, or ``None`` when the store has no disk
            layer, nothing was recorded, or the sidecar is unreadable.
        """
        path = self._metadata_path(spec)
        if path is None or not path.exists():
            return None
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return document if isinstance(document, dict) else None

    def put_run_metadata(self, spec: StudySpec, metadata: dict) -> None:
        """Persist the run metadata sidecar for ``spec`` (best effort).

        Uses the same write-then-rename discipline as the array bundles;
        an unwritable directory degrades silently (counted in
        :attr:`~repro.scenario.cache.ArrayCache.disk_errors`) — metadata
        must never take down the run it describes.
        """
        path = self._metadata_path(spec)
        if path is None:
            return
        tmp_path = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp_path.write_text(json.dumps(metadata, indent=2) + "\n")
            os.replace(tmp_path, path)
        except OSError:
            self.disk_errors += 1
        finally:
            try:
                tmp_path.unlink(missing_ok=True)
            except OSError:
                pass

    def stored_ranges(self, spec: StudySpec) -> list[tuple[int, int]]:
        """Case ranges of ``spec`` present in the disk layer, sorted.

        Used by the runner to detect a resume whose shard layout differs
        from the run that populated the store (the keys embed the ranges,
        so a different layout would silently recompute everything).

        Args:
            spec: The study whose shards to look for.

        Returns:
            Sorted ``(start, stop)`` ranges found on disk; empty when the
            store has no disk layer or holds nothing for this spec.
        """
        if self.cache_dir is None:
            return []
        prefix = spec.compute_hash[:40]
        ranges = []
        for path in self.cache_dir.glob(f"{prefix}-*.npz"):
            parts = path.stem.rsplit("-", 2)
            try:
                ranges.append((int(parts[1]), int(parts[2])))
            except (IndexError, ValueError):  # pragma: no cover - foreign file
                continue
        return sorted(ranges)

"""Structured JSONL run journal — the supervisor's observability substrate.

Every supervised study run can append one JSON object per line to a
``run.jsonl`` file (by default beside the :class:`~repro.study.results.StudyStore`
directory), recording the full shard lifecycle: submissions, completions,
retries with their backoff delays, wall-clock timeouts, pool rebuilds,
quarantined failures and the final run outcome.  The journal is *append
only* — an interrupted or crashed run leaves every event written so far, so
post-mortems never depend on the process surviving.  The writer keeps one
persistent append handle (flushed per event) instead of reopening the file
for every event; ``run_end`` closes it, and a later emit transparently
reopens.

Event schema (one JSON object per line)::

    {"event": "<type>", "t": <unix seconds>, ...}

========== =================================================================
event       extra fields
========== =================================================================
run_start   study, compute_hash, shards, jobs, retries, shard_timeout_s,
            keep_going
reused      shard, start, stop
submit      shard, start, stop, attempt
finish      shard, start, stop, attempt, wall_s
retry       shard, start, stop, attempt (the one that failed), delay_s,
            error, kind ("error" | "timeout" | "crash")
timeout     shard, start, stop, attempt, timeout_s
pool_broken lost (list of shard indices requeued), reason
layout_mismatch  stored (list of [start, stop]), current (list of [start, stop])
failure     shard, start, stop, attempts, error, kind
interrupt   completed
cancel      completed
run_end     computed, reused, failed, interrupted, cancelled, partial,
            wall_s
manifest    path, worker, of, shards, backend
merge_start study, compute_hash, manifests, shards
worker_replay  worker, source, events
merge_crn_check  sampled, cases, backends
merge_end   rows, shards, workers, wall_s
refresh_start  study, compute_hash, previous_hash, cases
refresh_end changed, reused, rows, wall_s
========== =================================================================

The distributed layer (:mod:`repro.study.distributed`) emits the last seven
events: ``manifest`` when a shard-slice run signs its sidecar,
``merge_start`` / ``worker_replay`` / ``merge_crn_check`` / ``merge_end``
around a manifest merge (each worker's journal is replayed verbatim into
the merged journal via :meth:`RunJournal.append`, *between* its
``worker_replay`` marker and the next event, so the merged file is a
superset of every worker's provenance), and ``refresh_start`` /
``refresh_end`` around a rolling re-evaluation.

This table is load-bearing: ``tests/test_journal_schema.py`` introspects
every ``emit(...)`` call site in the runner (and the service job store) and
asserts the emitted event names and field sets match it, so the journal
schema cannot drift from its documentation.

:func:`read_journal` parses a journal back into dictionaries.  A torn
**final** line — the one artifact an interrupted writer can legitimately
leave — is skipped silently; malformed lines *before* the end of the file
mean real corruption and are surfaced (skipped, counted and warned about)
instead of being silently dropped.  :func:`scan_journal` returns the
skipped count programmatically.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from pathlib import Path

__all__ = ["RunJournal", "read_journal", "scan_journal"]


class RunJournal:
    """Append-only JSONL event writer (no-op when constructed with ``None``).

    The file handle opens lazily on the first :meth:`emit`, stays open
    across events (one ``write`` + ``flush`` per event instead of an
    open/write/close cycle), and closes on ``run_end`` or :meth:`close`.
    Emitting after a close transparently reopens in append mode, so one
    journal instance can observe several consecutive runs.  Writes are
    serialized by an internal lock, so concurrently supervising threads
    (e.g. the service job queue) never interleave partial lines.

    Args:
        path: Journal file to append to (parents are created), or ``None``
            for a disabled journal whose :meth:`emit` does nothing.
    """

    def __init__(self, path: str | Path | None) -> None:
        self.path = Path(path) if path is not None else None
        self._handle = None
        self._lock = threading.Lock()
        if self.path is not None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
            except OSError:
                # An unwritable journal location disables the journal; it
                # must never take down the run it observes.
                self.path = None

    def emit(self, event: str, **fields) -> None:
        """Append one event line; disk errors are swallowed.

        A journal must never take down the run it observes, so any
        ``OSError`` from the write (disk full, permissions yanked
        mid-run) is silently dropped — the broken handle is discarded and
        the next emit retries with a fresh one.

        Args:
            event: Event type (see the module schema table).
            fields: JSON-serializable extra fields.
        """
        if self.path is None:
            return
        record = {"event": event, "t": time.time(), **fields}
        # No sort_keys: nested payloads (e.g. the service's persisted study
        # documents) carry semantic mapping order — axes declaration order
        # determines case enumeration — and must replay byte-faithfully.
        line = json.dumps(record) + "\n"
        with self._lock:
            try:
                if self._handle is None:
                    self._handle = open(self.path, "a")
                self._handle.write(line)
                self._handle.flush()
            except (OSError, ValueError):
                self._close_handle()
            if event == "run_end":
                self._close_handle()

    def append(self, record: dict) -> None:
        """Append one pre-built event record verbatim (replay path).

        Unlike :meth:`emit`, the record is written as-is — no ``t``
        timestamp is stamped and no schema is implied — so a merge can
        replay another journal's events into this one byte-faithfully
        (original timestamps, original fields).  Disk errors are swallowed
        exactly like :meth:`emit`; a replayed ``run_end`` does *not* close
        the handle (only a first-person ``run_end`` ends a journal).

        Args:
            record: A JSON-serializable event mapping.
        """
        if self.path is None:
            return
        line = json.dumps(record) + "\n"
        with self._lock:
            try:
                if self._handle is None:
                    self._handle = open(self.path, "a")
                self._handle.write(line)
                self._handle.flush()
            except (OSError, ValueError):
                self._close_handle()

    def close(self) -> None:
        """Close the append handle (a later :meth:`emit` reopens it)."""
        with self._lock:
            self._close_handle()

    def _close_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close on a dead handle
                pass
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def scan_journal(path: str | Path) -> tuple[list[dict], int]:
    """Parse a journal file, separating events from corruption evidence.

    Args:
        path: The journal file.

    Returns:
        ``(events, skipped)`` — one dict per well-formed line, in file
        order, and the number of malformed lines *before* the final line.
        A torn final line (the legitimate trace of an interrupted writer)
        is dropped without counting; a missing file reads as
        ``([], 0)``.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    lines = path.read_text().splitlines()
    events: list[dict] = []
    skipped = 0
    for number, line in enumerate(lines, start=1):
        try:
            events.append(json.loads(line))
        except ValueError:
            if number < len(lines):
                skipped += 1
    return events, skipped


def read_journal(path: str | Path) -> list[dict]:
    """Parse a ``run.jsonl`` file back into event dictionaries.

    Args:
        path: The journal file.

    Returns:
        One dict per well-formed line, in file order.  A torn final line
        (interrupted writer) is skipped silently; a missing file reads as
        an empty journal.

    Warns:
        RuntimeWarning: When malformed lines occur *before* the final
            line — mid-file corruption an append-only writer cannot
            produce, so it is surfaced instead of silently skipped (the
            warning carries the skipped-line count; use
            :func:`scan_journal` to obtain it programmatically).
    """
    events, skipped = scan_journal(path)
    if skipped:
        warnings.warn(
            f"journal {str(path)!r}: skipped {skipped} malformed mid-file "
            f"line(s) — an append-only writer only ever tears its final "
            f"line, so this journal has been corrupted or hand-edited",
            RuntimeWarning, stacklevel=2)
    return events

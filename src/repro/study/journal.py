"""Structured JSONL run journal — the supervisor's observability substrate.

Every supervised study run can append one JSON object per line to a
``run.jsonl`` file (by default beside the :class:`~repro.study.results.StudyStore`
directory), recording the full shard lifecycle: submissions, completions,
retries with their backoff delays, wall-clock timeouts, pool rebuilds,
quarantined failures and the final run outcome.  The journal is *append
only* — an interrupted or crashed run leaves every event written so far, so
post-mortems never depend on the process surviving.

Event schema (one JSON object per line)::

    {"event": "<type>", "t": <unix seconds>, ...}

========== =================================================================
event       extra fields
========== =================================================================
run_start   study, compute_hash, shards, jobs, retries, shard_timeout_s,
            keep_going
reused      shard, start, stop
submit      shard, start, stop, attempt
finish      shard, start, stop, attempt, wall_s
retry       shard, start, stop, attempt (the one that failed), delay_s,
            error, kind ("error" | "timeout" | "crash")
timeout     shard, start, stop, attempt, timeout_s
pool_broken lost (list of shard indices requeued)
layout_mismatch  stored (list of [start, stop]), current (list of [start, stop])
failure     shard, start, stop, attempts, error, kind
interrupt   completed
run_end     computed, reused, failed, interrupted, partial, wall_s
========== =================================================================

:func:`read_journal` parses a journal back into dictionaries (skipping
torn trailing lines, which an interrupted writer can legitimately leave).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["RunJournal", "read_journal"]


class RunJournal:
    """Append-only JSONL event writer (no-op when constructed with ``None``).

    Args:
        path: Journal file to append to (parents are created), or ``None``
            for a disabled journal whose :meth:`emit` does nothing.
    """

    def __init__(self, path: str | Path | None) -> None:
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
            except OSError:
                # An unwritable journal location disables the journal; it
                # must never take down the run it observes.
                self.path = None

    def emit(self, event: str, **fields) -> None:
        """Append one event line; disk errors are swallowed.

        A journal must never take down the run it observes, so any
        ``OSError`` from the append (disk full, permissions yanked
        mid-run) is silently dropped.

        Args:
            event: Event type (see the module schema table).
            fields: JSON-serializable extra fields.
        """
        if self.path is None:
            return
        record = {"event": event, "t": time.time(), **fields}
        try:
            with open(self.path, "a") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            pass


def read_journal(path: str | Path) -> list[dict]:
    """Parse a ``run.jsonl`` file back into event dictionaries.

    Args:
        path: The journal file.

    Returns:
        One dict per well-formed line, in file order.  A torn final line
        (interrupted writer) is skipped rather than raised on; a missing
        file reads as an empty journal.
    """
    path = Path(path)
    if not path.exists():
        return []
    events = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError:
            continue
    return events

"""EMF exposure compliance — the constraint that motivates the paper.

"Considering higher frequency bands used by 5G and the stringent
electromagnetic field (EMF) limits enforced in certain countries (e.g.,
Canada, Italy, Poland, Switzerland, China, Russia), ISDs of a few 100's of
meters up to 1000 m are necessary" (Section I).

This package quantifies that constraint: far-field power density around the
corridor's transmitters, compliance distances against ICNIRP and the stricter
national installation limits, and the EMF argument for low-power repeaters
(their 10 W EIRP is compliant within metres even under the strictest rules).
"""

from repro.emf.compliance import (
    EmfLimit,
    ICNIRP_GENERAL_PUBLIC,
    STRICT_INSTALLATION_LIMITS,
    compliance_distance_m,
    power_density_w_m2,
    field_strength_v_m,
    node_compliance,
)

__all__ = [
    "EmfLimit",
    "ICNIRP_GENERAL_PUBLIC",
    "STRICT_INSTALLATION_LIMITS",
    "power_density_w_m2",
    "field_strength_v_m",
    "compliance_distance_m",
    "node_compliance",
]

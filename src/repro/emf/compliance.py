"""Far-field EMF exposure around corridor transmitters.

Free-space far-field power density of an antenna with a given EIRP:

    S(d) = EIRP / (4 pi d^2)           [W/m²]

and the equivalent plane-wave field strength ``E = sqrt(S * Z0)`` with
``Z0 = 377 Ohm``.  Limits are expressed either as power density (ICNIRP) or
field strength (the national installation limits of the strict countries the
paper lists).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import ConfigurationError
from repro.units import dbm_to_w

__all__ = [
    "EmfLimit",
    "ICNIRP_GENERAL_PUBLIC",
    "STRICT_INSTALLATION_LIMITS",
    "power_density_w_m2",
    "field_strength_v_m",
    "compliance_distance_m",
    "node_compliance",
]

_FREE_SPACE_IMPEDANCE_OHM = 376.73


def power_density_w_m2(eirp_dbm: float, distance_m) -> np.ndarray | float:
    """Far-field power density at a distance from an EIRP source."""
    d = np.maximum(np.asarray(distance_m, dtype=float), 0.01)
    s = dbm_to_w(eirp_dbm) / (4.0 * np.pi * d**2)
    return float(s) if np.ndim(distance_m) == 0 else s


def field_strength_v_m(eirp_dbm: float, distance_m) -> np.ndarray | float:
    """Equivalent plane-wave field strength at a distance [V/m]."""
    s = power_density_w_m2(eirp_dbm, distance_m)
    e = np.sqrt(np.asarray(s) * _FREE_SPACE_IMPEDANCE_OHM)
    return float(e) if np.ndim(distance_m) == 0 else e


@dataclass(frozen=True)
class EmfLimit:
    """An exposure limit, as power density and/or field strength."""

    name: str
    power_density_w_m2: float | None = None
    field_strength_v_m: float | None = None

    def __post_init__(self) -> None:
        if self.power_density_w_m2 is None and self.field_strength_v_m is None:
            raise ConfigurationError(f"{self.name}: need at least one limit value")
        if self.power_density_w_m2 is not None and self.power_density_w_m2 <= 0:
            raise ConfigurationError(f"{self.name}: power density limit must be positive")
        if self.field_strength_v_m is not None and self.field_strength_v_m <= 0:
            raise ConfigurationError(f"{self.name}: field strength limit must be positive")

    def equivalent_power_density_w_m2(self) -> float:
        """The limit expressed as power density (the stricter when both given)."""
        candidates = []
        if self.power_density_w_m2 is not None:
            candidates.append(self.power_density_w_m2)
        if self.field_strength_v_m is not None:
            candidates.append(self.field_strength_v_m**2 / _FREE_SPACE_IMPEDANCE_OHM)
        return min(candidates)


#: ICNIRP 2020 general-public reference level above 2 GHz: 10 W/m².
ICNIRP_GENERAL_PUBLIC = EmfLimit("ICNIRP general public", power_density_w_m2=10.0)

#: Installation limits of the strict countries the paper names (values for
#: sensitive-use locations; Switzerland ONIR 6 V/m for sub-6 GHz 5G, Italy
#: 6 V/m attention value, Poland historically 7 V/m equivalent).
STRICT_INSTALLATION_LIMITS: dict[str, EmfLimit] = {
    "switzerland": EmfLimit("Switzerland ONIR", field_strength_v_m=6.0),
    "italy": EmfLimit("Italy attention value", field_strength_v_m=6.0),
    "poland": EmfLimit("Poland (pre-2020)", power_density_w_m2=0.1),
}


def compliance_distance_m(eirp_dbm: float, limit: EmfLimit) -> float:
    """Distance beyond which exposure falls below the limit.

        S(d) <= S_lim  ->  d >= sqrt(EIRP / (4 pi S_lim))
    """
    s_lim = limit.equivalent_power_density_w_m2()
    return float(np.sqrt(dbm_to_w(eirp_dbm) / (4.0 * np.pi * s_lim)))


@dataclass(frozen=True)
class NodeCompliance:
    """Compliance distances of one transmitter against a set of limits."""

    eirp_dbm: float
    distances_m: dict[str, float]

    def worst_case_m(self) -> float:
        return max(self.distances_m.values())


def node_compliance(eirp_dbm: float,
                    limits: dict[str, EmfLimit] | None = None) -> NodeCompliance:
    """Compliance distances for a transmitter under each regulatory regime.

    Defaults to ICNIRP plus the strict national limits.  The corridor story
    in numbers: a 64 dBm HP antenna needs tens of metres of clearance under
    the strict limits (hence masts *beside* the track and EMF-driven ISD
    limits), while the 40 dBm repeater complies within a few metres —
    mountable on any catenary mast.
    """
    if limits is None:
        limits = {"icnirp": ICNIRP_GENERAL_PUBLIC, **STRICT_INSTALLATION_LIMITS}
    distances = {name: compliance_distance_m(eirp_dbm, limit)
                 for name, limit in limits.items()}
    return NodeCompliance(eirp_dbm=eirp_dbm, distances_m=distances)

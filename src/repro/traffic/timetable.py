"""Timetable generation for the event-driven simulation.

A timetable is a list of train *runs*: the wall-clock time the train's nose
passes chainage 0 of the simulated corridor segment, its direction, and the
train description.  Deterministic timetables reproduce the analytic duty-cycle
numbers exactly; stochastic ones (Poisson headways, seeded) exercise the sleep
controller under irregular traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.traffic.trains import TrafficParams, Train

__all__ = ["TrainRun", "Timetable", "generate_timetable", "day_timetables"]

_DAY_S = 86_400.0


@dataclass(frozen=True)
class TrainRun:
    """One train crossing the simulated segment.

    ``t0_s`` is when the nose enters chainage 0 for ``direction=+1`` runs or
    chainage L (the segment end) for ``direction=-1`` runs.
    """

    t0_s: float
    train: Train = field(default_factory=Train)
    direction: int = 1

    def __post_init__(self) -> None:
        if self.direction not in (1, -1):
            raise ConfigurationError(f"direction must be +1 or -1, got {self.direction}")
        if self.t0_s < 0:
            raise ConfigurationError(f"run start must be >= 0, got {self.t0_s}")

    def nose_position_m(self, t_s: float, segment_length_m: float) -> float:
        """Nose chainage at time ``t_s`` (may be outside [0, L])."""
        v = self.train.speed_ms
        if self.direction == 1:
            return (t_s - self.t0_s) * v
        return segment_length_m - (t_s - self.t0_s) * v

    def interval_over(self, start_m: float, end_m: float,
                      segment_length_m: float) -> tuple[float, float]:
        """(enter, exit) times during which any part of the train overlaps
        the chainage interval [start_m, end_m]."""
        if end_m < start_m:
            raise ConfigurationError(f"interval end {end_m} before start {start_m}")
        v = self.train.speed_ms
        length = self.train.length_m
        if self.direction == 1:
            enter = self.t0_s + start_m / v            # nose reaches start
            exit_ = self.t0_s + (end_m + length) / v   # tail clears end
        else:
            enter = self.t0_s + (segment_length_m - end_m) / v
            exit_ = self.t0_s + (segment_length_m - start_m + length) / v
        return enter, exit_


@dataclass(frozen=True)
class Timetable:
    """An ordered collection of train runs over one or more days."""

    runs: tuple[TrainRun, ...]
    horizon_s: float = _DAY_S

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon_s}")
        starts = [r.t0_s for r in self.runs]
        if list(starts) != sorted(starts):
            raise ConfigurationError("runs must be sorted by start time")

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)


def generate_timetable(params: TrafficParams | None = None,
                       days: float = 1.0,
                       segment_length_m: float = 0.0,
                       stochastic: bool = False,
                       seed: int | Sequence[int] | None = None) -> Timetable:
    """Build a timetable matching the Table III scenario.

    Deterministic mode places trains at exact headway intervals within the
    service window (night gap at the start of each day), alternating
    directions.  Stochastic mode draws exponential headways with the same
    mean rate; ``seed`` is anything :func:`numpy.random.default_rng` accepts
    (an int, or a ``[seed, realization]`` sequence for the common-random-
    number convention of :func:`day_timetables`).

    ``segment_length_m`` extends the service window so trains that *enter*
    before the window closes still fully traverse the segment (irrelevant for
    duty-cycle totals, but keeps the event simulation self-consistent).
    """
    params = params or TrafficParams()
    if days <= 0:
        raise ConfigurationError(f"days must be positive, got {days}")
    horizon = days * _DAY_S
    runs: list[TrainRun] = []
    direction = 1

    if not stochastic:
        headway = params.headway_s
        if headway == float("inf"):
            return Timetable(runs=(), horizon_s=horizon)
        day = 0
        while day < days:
            window_start = day * _DAY_S + params.night_quiet_hours * 3600.0
            window_end = (day + 1) * _DAY_S
            t = window_start
            while t < window_end - 1e-9:
                runs.append(TrainRun(t0_s=t, train=params.train, direction=direction))
                direction = -direction
                t += headway
            day += 1
    else:
        rng = np.random.default_rng(seed)
        day = 0
        while day < days:
            window_start = day * _DAY_S + params.night_quiet_hours * 3600.0
            window_end = (day + 1) * _DAY_S
            t = window_start + rng.exponential(params.headway_s)
            while t < window_end:
                direction = 1 if rng.random() < 0.5 else -1
                runs.append(TrainRun(t0_s=t, train=params.train, direction=direction))
                t += rng.exponential(params.headway_s)
            day += 1
        runs.sort(key=lambda r: r.t0_s)

    return Timetable(runs=tuple(runs), horizon_s=horizon)


def day_timetables(params: TrafficParams | None = None,
                   realizations: int = 1,
                   seed: int = 0,
                   days: float = 1.0,
                   segment_length_m: float = 0.0) -> tuple[Timetable, ...]:
    """Seeded fleet of stochastic day timetables under common random numbers.

    Realization ``r`` is generated from ``default_rng([seed, r])`` — the same
    CRN convention as :func:`repro.optimize.mc.trial_generators`: the Poisson
    day ``r`` depends only on ``(seed, r)``, never on the layout or policy
    being evaluated, so Monte-Carlo noise cancels out of cross-scenario
    comparisons that share a seed.
    """
    if realizations < 1:
        raise ConfigurationError(
            f"realizations must be >= 1, got {realizations}")
    return tuple(
        generate_timetable(params, days=days, segment_length_m=segment_length_m,
                           stochastic=True, seed=[seed, r])
        for r in range(realizations))

"""Coverage-section occupancy and duty cycles — the heart of Section V-A.

A radio unit runs at full load exactly while any part of a train overlaps its
coverage section, so per train it is busy for ``(section + train) / speed``
seconds.  With the Table III scenario (8 trains/h over 19 service hours) this
gives the paper's quoted duty cycles: 2.85 % for a 500 m HP section and
9.66 % for 2650 m, and 16 s / 55 s of full load per train.
"""

from __future__ import annotations

from repro import constants
from repro.errors import ConfigurationError
from repro.traffic.trains import TrafficParams

__all__ = [
    "full_load_seconds_per_train",
    "trains_per_day",
    "occupancy_seconds_per_day",
    "duty_cycle",
    "average_power_w",
]

_DAY_S = 86_400.0


def full_load_seconds_per_train(section_m: float,
                                params: TrafficParams | None = None) -> float:
    """Seconds of full-load operation caused by one passing train."""
    params = params or TrafficParams()
    return params.train.occupancy_seconds(section_m)


def trains_per_day(params: TrafficParams | None = None) -> float:
    """Trains crossing the segment per day (8/h x 19 h = 152 in the paper)."""
    params = params or TrafficParams()
    return params.trains_per_day


def occupancy_seconds_per_day(section_m: float,
                              params: TrafficParams | None = None) -> float:
    """Total daily full-load seconds for a coverage section.

    Assumes train passages do not overlap within one section, which holds
    whenever the headway exceeds the single-train occupancy (7.5 min vs.
    <1 min for every section in the paper).
    """
    params = params or TrafficParams()
    per_train = full_load_seconds_per_train(section_m, params)
    if per_train > params.headway_s:
        raise ConfigurationError(
            f"section {section_m} m occupancy {per_train:.1f} s exceeds the "
            f"headway {params.headway_s:.1f} s; passages would overlap")
    return per_train * params.trains_per_day


def duty_cycle(section_m: float, params: TrafficParams | None = None) -> float:
    """24 h-average full-load time fraction of a coverage section."""
    return occupancy_seconds_per_day(section_m, params) / _DAY_S


def average_power_w(section_m: float,
                    full_load_w: float,
                    inactive_w: float,
                    params: TrafficParams | None = None) -> float:
    """24 h-average power of a unit serving one coverage section.

    ``inactive_w`` is what the unit draws when no train is present — its
    no-load power for always-on operation, or its sleep power when it sleeps
    between trains.
    """
    if full_load_w < 0 or inactive_w < 0:
        raise ConfigurationError("powers must be >= 0 W")
    chi = duty_cycle(section_m, params)
    return chi * full_load_w + (1.0 - chi) * inactive_w

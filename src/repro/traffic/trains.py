"""Train and traffic-scenario parameter types."""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError
from repro.units import kmh_to_ms

__all__ = ["Train", "TrafficParams"]


@dataclass(frozen=True)
class Train:
    """A single train: physical length and cruise speed."""

    length_m: float = constants.TRAIN_LENGTH_M
    speed_kmh: float = constants.TRAIN_SPEED_KMH

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise ConfigurationError(f"train length must be positive, got {self.length_m}")
        if self.speed_kmh <= 0:
            raise ConfigurationError(f"train speed must be positive, got {self.speed_kmh}")

    @property
    def speed_ms(self) -> float:
        return kmh_to_ms(self.speed_kmh)

    def occupancy_seconds(self, section_m: float) -> float:
        """Time the train overlaps a section: (section + length) / speed."""
        if section_m < 0:
            raise ConfigurationError(f"section length must be >= 0, got {section_m}")
        return (section_m + self.length_m) / self.speed_ms


@dataclass(frozen=True)
class TrafficParams:
    """The Table III traffic scenario.

    ``trains_per_hour`` applies during service hours; there is no passenger
    traffic for ``night_quiet_hours`` per day.  The paper counts trains per
    direction jointly — 8 trains/h cross a given segment in total.
    """

    trains_per_hour: float = constants.TRAINS_PER_HOUR
    night_quiet_hours: float = constants.NIGHT_QUIET_HOURS
    train: Train = Train()

    def __post_init__(self) -> None:
        if self.trains_per_hour < 0:
            raise ConfigurationError(f"trains/h must be >= 0, got {self.trains_per_hour}")
        if not 0 <= self.night_quiet_hours <= 24:
            raise ConfigurationError(
                f"night quiet hours must be within [0, 24], got {self.night_quiet_hours}")

    @property
    def service_hours(self) -> float:
        """Hours per day with passenger traffic."""
        return 24.0 - self.night_quiet_hours

    @property
    def trains_per_day(self) -> float:
        return self.trains_per_hour * self.service_hours

    @property
    def headway_s(self) -> float:
        """Average time between consecutive trains during service hours."""
        if self.trains_per_hour == 0:
            return float("inf")
        return 3600.0 / self.trains_per_hour

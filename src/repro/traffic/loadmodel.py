"""Partial-load traffic model — demand below the full-buffer assumption.

The paper conservatively assumes chi = 1 whenever a train is in the coverage
section (full-buffer).  Actual demand depends on passengers and their usage;
the EARTH model's linear load term (Eq. 3) rewards serving a train at
chi < 1.  This module computes the demand-driven load fraction and the
resulting average power, quantifying how much additional saving realistic
demand brings on top of the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capacity.shannon import TruncatedShannonModel
from repro.errors import ConfigurationError
from repro.power.earth_model import EarthPowerModel
from repro.radio.carrier import NrCarrier
from repro.traffic.occupancy import duty_cycle
from repro.traffic.trains import TrafficParams

__all__ = ["DemandModel", "demand_load_fraction", "average_power_with_demand_w"]


@dataclass(frozen=True)
class DemandModel:
    """Per-train demand: passengers times average per-passenger rate.

    Defaults: a full 400 m high-speed train (~800 seats, 60 % occupancy) with
    a busy-hour average of 2 Mbit/s per active passenger (one third active).
    """

    seats: int = 800
    occupancy: float = 0.60
    active_share: float = 0.33
    rate_per_active_bps: float = 2e6

    def __post_init__(self) -> None:
        if self.seats <= 0:
            raise ConfigurationError(f"seats must be positive, got {self.seats}")
        for name in ("occupancy", "active_share"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.rate_per_active_bps < 0:
            raise ConfigurationError("rate must be >= 0")

    @property
    def offered_bps(self) -> float:
        """Aggregate demand of one train."""
        return (self.seats * self.occupancy * self.active_share
                * self.rate_per_active_bps)


def demand_load_fraction(demand: DemandModel | None = None,
                         carrier: NrCarrier | None = None,
                         capacity: TruncatedShannonModel | None = None) -> float:
    """Cell load fraction chi while a train is served.

    chi = offered traffic / cell capacity at peak spectral efficiency,
    clipped to 1 (full buffer).  With defaults: ~317 Mbit/s demand against a
    584 Mbit/s cell -> chi = 0.54.
    """
    demand = demand or DemandModel()
    carrier = carrier or NrCarrier()
    capacity = capacity or TruncatedShannonModel()
    cell_bps = capacity.max_bps_hz * carrier.bandwidth_hz
    if cell_bps <= 0:
        raise ConfigurationError("cell capacity must be positive")
    return min(1.0, demand.offered_bps / cell_bps)


def average_power_with_demand_w(section_m: float,
                                model: EarthPowerModel,
                                demand: DemandModel | None = None,
                                traffic: TrafficParams | None = None,
                                sleeping: bool = True,
                                carrier: NrCarrier | None = None) -> float:
    """24 h-average power of a unit serving demand-driven (not full) load.

    While a train is in the section the unit runs at ``chi`` from the demand
    model; otherwise it sleeps (or idles).  With chi = 1 this reduces exactly
    to the paper's accounting.
    """
    chi = demand_load_fraction(demand, carrier)
    occupied = duty_cycle(section_m, traffic)
    inactive_w = model.p_sleep_w if sleeping else model.no_load_w
    return occupied * model.input_power_w(chi) + (1.0 - occupied) * inactive_w

"""Train traffic substrate — the Table III scenario.

High-speed corridor: 8 trains/h during the 19 service hours, no passenger
traffic for 5 h at night, 400 m trains at 200 km/h.  The package provides the
train/timetable description, deterministic and stochastic timetable
generation, and the coverage-section occupancy math that drives every duty
cycle in the paper.
"""

from repro.traffic.trains import Train, TrafficParams
from repro.traffic.timetable import (
    Timetable,
    TrainRun,
    day_timetables,
    generate_timetable,
)
from repro.traffic.occupancy import (
    full_load_seconds_per_train,
    duty_cycle,
    occupancy_seconds_per_day,
    trains_per_day,
)

__all__ = [
    "Train",
    "TrafficParams",
    "Timetable",
    "TrainRun",
    "generate_timetable",
    "day_timetables",
    "full_load_seconds_per_train",
    "duty_cycle",
    "occupancy_seconds_per_day",
    "trains_per_day",
]

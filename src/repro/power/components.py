"""Component-level power breakdown of the low-power repeater — Table I.

The prototype consists of a controller, a GNSS-disciplined OCXO, a local
oscillator with frequency doubler, RF switches, and per-direction LNA/PA
chains (two paths each for DL and UL, cross-polarized).

Reconciliation with the paper's totals (see DESIGN.md #4.4):

* Sleep: controller + DOCXO + LO-in-sleep = 2 + 2.22 + 0.5 = 4.72 W  (exact).
* No load: all components on, the four PAs at quiescent drive.  The paper's
  Table II gives P0 = 24.26 W, which implies a PA quiescent power of
  (24.26 - 11.899) / 4 = 3.09 W — a plausible class-AB idle draw.
* Full load: the paper reports 28.38 W.  The raw sum with all four PAs at
  full drive would be 31.9 W; 5G NR at 3.5 GHz is TDD, so only one direction
  transmits at a time.  With the two active-direction PAs at full drive and
  the other two at quiescent the model gives 28.08 W (0.3 W below the paper's
  figure — within component rounding).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["ComponentMode", "Component", "RepeaterBill", "repeater_prototype_bill"]


class ComponentMode(enum.Enum):
    """Functional group a component belongs to (Table I columns)."""

    COMMON = "common"
    DOWNLINK = "downlink"
    UPLINK = "uplink"


@dataclass(frozen=True)
class Component:
    """One line of the Table I bill of materials.

    ``active_w`` is the draw when its direction is transmitting/receiving;
    ``idle_w`` when powered but not driven; ``sleep_w`` in sleep mode.
    """

    name: str
    mode: ComponentMode
    active_w: float
    idle_w: float
    sleep_w: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"component count must be >= 1, got {self.count}")
        for label, value in (("active", self.active_w), ("idle", self.idle_w),
                             ("sleep", self.sleep_w)):
            if value < 0:
                raise ConfigurationError(f"{label} power of {self.name} must be >= 0, got {value}")

    def total_active_w(self) -> float:
        return self.active_w * self.count

    def total_idle_w(self) -> float:
        return self.idle_w * self.count

    def total_sleep_w(self) -> float:
        return self.sleep_w * self.count


#: PA quiescent draw implied by Table II's P0 (see module docstring).
PA_QUIESCENT_W = 3.09025


def repeater_prototype_bill() -> "RepeaterBill":
    """The Table I bill of materials of the prototype repeater node."""
    c = ComponentMode.COMMON
    dl = ComponentMode.DOWNLINK
    ul = ComponentMode.UPLINK
    return RepeaterBill(components=(
        Component("Controller", c, active_w=2.0, idle_w=2.0, sleep_w=2.0),
        Component("GNSS DOCXO", c, active_w=2.22, idle_w=2.22, sleep_w=2.22),
        Component("Local Oscillator", c, active_w=5.0, idle_w=5.0, sleep_w=0.5),
        Component("Frequency Doubler", c, active_w=0.35, idle_w=0.35, sleep_w=0.0),
        Component("RF Switches", c, active_w=0.195, idle_w=0.195, sleep_w=0.0),
        Component("RX LNA (DL)", dl, active_w=0.27, idle_w=0.27, sleep_w=0.0, count=2),
        Component("TX PA (DL)", dl, active_w=5.0, idle_w=PA_QUIESCENT_W, sleep_w=0.0, count=2),
        Component("RX LNA (UL)", ul, active_w=0.462, idle_w=0.462, sleep_w=0.0, count=2),
        Component("Second RX LNA (UL)", ul, active_w=0.335, idle_w=0.335, sleep_w=0.0, count=2),
        Component("TX PA (UL)", ul, active_w=5.0, idle_w=PA_QUIESCENT_W, sleep_w=0.0, count=2),
    ))


@dataclass(frozen=True)
class RepeaterBill:
    """A bill of components with mode-aware power aggregation."""

    components: tuple[Component, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError("a repeater bill needs at least one component")
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate component names in {names}")

    def sleep_w(self) -> float:
        """Sleep-mode draw (Table I last column): 4.72 W."""
        return sum(c.total_sleep_w() for c in self.components)

    def no_load_w(self) -> float:
        """All components on, PAs at quiescent (Table II P0): 24.26 W."""
        return sum(c.total_idle_w() for c in self.components)

    def full_load_tdd_w(self, downlink_active: bool = True) -> float:
        """Full traffic load under TDD: one direction's PAs at full drive."""
        active_mode = ComponentMode.DOWNLINK if downlink_active else ComponentMode.UPLINK
        total = 0.0
        for c in self.components:
            if c.mode is ComponentMode.COMMON or c.mode is active_mode:
                total += c.total_active_w()
            else:
                total += c.total_idle_w()
        return total

    def full_load_simultaneous_w(self) -> float:
        """Raw sum with every path at full drive (31.9 W, upper bound)."""
        return sum(c.total_active_w() for c in self.components)

    def paper_full_load_w(self) -> float:
        """The full-load figure as published (Table I): 28.38 W."""
        return constants.LP_REPEATER_FULL_LOAD_W

    def by_mode(self, mode: ComponentMode) -> tuple[Component, ...]:
        """Components belonging to one functional group."""
        return tuple(c for c in self.components if c.mode is mode)

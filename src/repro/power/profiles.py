"""Named power profiles (Table II) and mast-level aggregation.

Table II of the paper:

    Node type           P_max [W]  P0 [W]  Delta_p  P_sleep [W]
    High-power RRH      40         168     2.8      112
    Low-power repeater  1          24.26   4.0      4.72

A high-power *site* (mast) carries two RRHs, giving the Section III-B site
figures: 560 W full load, 336 W no load, 224 W sleep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError
from repro.power.earth_model import EarthPowerModel, PowerState

__all__ = ["PowerProfile", "HP_RRH_PROFILE", "LP_REPEATER_PROFILE", "hp_site_power_w"]


@dataclass(frozen=True)
class PowerProfile:
    """An EARTH model with a human-readable identity."""

    name: str
    model: EarthPowerModel

    def state_power_w(self, state: PowerState) -> float:
        return self.model.state_power_w(state)


HP_RRH_PROFILE = PowerProfile(
    name="High-Power RRH",
    model=EarthPowerModel(
        p_max_w=constants.HP_RRH_PMAX_W,
        p0_w=constants.HP_RRH_P0_W,
        delta_p=constants.HP_RRH_DELTA_P,
        p_sleep_w=constants.HP_RRH_PSLEEP_W,
    ),
)

LP_REPEATER_PROFILE = PowerProfile(
    name="Low-Power Repeater",
    model=EarthPowerModel(
        p_max_w=constants.LP_REPEATER_PMAX_W,
        p0_w=constants.LP_REPEATER_P0_W,
        delta_p=constants.LP_REPEATER_DELTA_P,
        p_sleep_w=constants.LP_REPEATER_PSLEEP_W,
    ),
)


def hp_site_power_w(state: PowerState, rrh_per_mast: int = constants.RRH_PER_MAST) -> float:
    """Power of a whole high-power mast (both RRHs) in a given state."""
    if rrh_per_mast < 1:
        raise ConfigurationError(f"a mast needs at least one RRH, got {rrh_per_mast}")
    return rrh_per_mast * HP_RRH_PROFILE.state_power_w(state)

"""EARTH parameterized power model — Eq. (3) of the paper.

    P_in = P0 + Delta_p * P_max * chi   for 0 < chi <= 1
         = P_sleep                      for chi = 0 (sleep mode)

``chi`` is the traffic load as a fraction of the maximum possible load;
``P_max`` is the maximum RF output power.  Developed in the EU FP7 EARTH
project (refs. [12], [20]); load-fraction refinement per ref. [13].

Note the model's deliberate discontinuity at ``chi = 0``: zero load with the
unit *awake* is ``P0`` (evaluate with ``chi -> 0`` via :meth:`no_load_w` or
``input_power_w(0.0, sleeping=False)``), while ``chi = 0`` *asleep* is
``P_sleep``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PowerState", "EarthPowerModel"]


class PowerState(enum.Enum):
    """Operating states of a radio unit in the corridor."""

    FULL_LOAD = "full_load"   # chi = 1, a train is being served
    NO_LOAD = "no_load"       # awake but idle (chi -> 0)
    SLEEP = "sleep"           # sleep mode


@dataclass(frozen=True)
class EarthPowerModel:
    """One radio unit's EARTH power parameters (a Table II row)."""

    p_max_w: float
    p0_w: float
    delta_p: float
    p_sleep_w: float

    def __post_init__(self) -> None:
        if self.p_max_w <= 0:
            raise ConfigurationError(f"P_max must be positive, got {self.p_max_w}")
        if self.p0_w <= 0:
            raise ConfigurationError(f"P0 must be positive, got {self.p0_w}")
        if self.delta_p <= 0:
            raise ConfigurationError(f"Delta_p must be positive, got {self.delta_p}")
        if not 0 <= self.p_sleep_w <= self.p0_w:
            raise ConfigurationError(
                f"P_sleep {self.p_sleep_w} must lie in [0, P0={self.p0_w}]")

    def input_power_w(self, load, sleeping: bool = False):
        """Consumed input power for a load fraction ``chi`` in [0, 1].

        With ``sleeping=True`` the load must be 0 and ``P_sleep`` is returned.
        Accepts scalar or array loads.
        """
        chi = np.asarray(load, dtype=float)
        if np.any(chi < 0) or np.any(chi > 1):
            raise ConfigurationError(f"load must be within [0, 1], got {load!r}")
        if sleeping:
            if np.any(chi > 0):
                raise ConfigurationError("a sleeping unit cannot carry load")
            out = np.full_like(chi, self.p_sleep_w)
            return float(out) if np.ndim(load) == 0 else out
        out = self.p0_w + self.delta_p * self.p_max_w * chi
        return float(out) if np.ndim(load) == 0 else out

    def state_power_w(self, state: PowerState) -> float:
        """Power for one of the three canonical operating states."""
        if state is PowerState.FULL_LOAD:
            return self.full_load_w
        if state is PowerState.NO_LOAD:
            return self.no_load_w
        return self.p_sleep_w

    @property
    def full_load_w(self) -> float:
        """Power at chi = 1."""
        return self.p0_w + self.delta_p * self.p_max_w

    @property
    def no_load_w(self) -> float:
        """Power awake at vanishing load (the model's chi -> 0 limit)."""
        return self.p0_w

    def average_power_w(self, full_load_fraction: float,
                        sleep_fraction: float = 0.0) -> float:
        """Time-averaged power given full-load and sleep time fractions.

        The remaining time fraction is spent awake at no load.  This is the
        paper's Section V-A accounting: a unit is either serving a passing
        train at full load, asleep, or idling.
        """
        if not 0 <= full_load_fraction <= 1:
            raise ConfigurationError(f"full-load fraction must be in [0,1], got {full_load_fraction}")
        if not 0 <= sleep_fraction <= 1:
            raise ConfigurationError(f"sleep fraction must be in [0,1], got {sleep_fraction}")
        if full_load_fraction + sleep_fraction > 1.0 + 1e-12:
            raise ConfigurationError("full-load and sleep fractions exceed 100 % of time")
        idle_fraction = 1.0 - full_load_fraction - sleep_fraction
        return (full_load_fraction * self.full_load_w
                + idle_fraction * self.no_load_w
                + sleep_fraction * self.p_sleep_w)

"""Power-consumption substrate.

* :mod:`repro.power.earth_model` — the EARTH parameterized model (Eq. 3),
* :mod:`repro.power.components` — the Table I component-level breakdown of the
  low-power repeater prototype,
* :mod:`repro.power.profiles` — named Table II parameter sets and mast-level
  aggregation.
"""

from repro.power.earth_model import EarthPowerModel, PowerState
from repro.power.components import (
    Component,
    ComponentMode,
    RepeaterBill,
    repeater_prototype_bill,
)
from repro.power.profiles import (
    HP_RRH_PROFILE,
    LP_REPEATER_PROFILE,
    hp_site_power_w,
    PowerProfile,
)

__all__ = [
    "EarthPowerModel",
    "PowerState",
    "Component",
    "ComponentMode",
    "RepeaterBill",
    "repeater_prototype_bill",
    "PowerProfile",
    "HP_RRH_PROFILE",
    "LP_REPEATER_PROFILE",
    "hp_site_power_w",
]

"""A small deterministic discrete-event simulation engine.

Event-queue semantics:

* events fire in (time, sequence) order — ties break by scheduling order,
  making runs fully deterministic,
* callbacks may schedule further events (including at the current time),
* events can be cancelled,
* generator *processes* are supported: a process yields non-negative delays
  and is resumed after each delay elapses.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering key is (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the queue lazily)."""
        self.cancelled = True


class Simulator:
    """Deterministic event-driven simulator with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    # -- scheduling ----------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule a callback at an absolute time (>= now)."""
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} in the past (now = {self.now})")
        event = Event(time=max(time, self.now), seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule a callback after a non-negative delay."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.now + delay, callback)

    def process(self, generator: Generator[float, None, None]) -> None:
        """Run a generator as a process: each yielded value is a delay."""

        def step() -> None:
            try:
                delay = next(generator)
            except StopIteration:
                return
            if delay < 0:
                raise SimulationError(f"process yielded negative delay {delay}")
            self.schedule(delay, step)

        self.schedule(0.0, step)

    # -- execution -----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of callbacks actually fired so far.

        Lazily-cancelled events never count: they are discarded when they
        reach the head of the queue without firing (pinned in the tests).
        """
        return self._processed

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now - 1e-9:
                raise SimulationError(
                    f"event at {event.time} before current time {self.now}")
            self.now = max(self.now, event.time)
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Run until the queue drains or the clock passes ``until``.

        The clock is advanced to ``until`` at the end so time-weighted
        statistics cover the full horizon.
        """
        fired = 0
        while self._queue:
            next_event = self._queue[0]
            if until is not None and next_event.time > until:
                # Beyond the horizon nothing fires — cancelled or not, the
                # head stays queued for a later run() call.
                break
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if not self.step():
                break
            fired += 1
            if fired > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
        if until is not None and self.now < until:
            self.now = until

"""Photoelectric train barrier model.

"A passing train is detected using a photoelectric barrier, and the repeater
node will switch to full operation during that time duration." (Section IV)

A barrier guards one coverage section.  It is placed ``wake_lead_m`` upstream
of the section boundary on both sides, so a sleeping node receives its wake
command early enough to finish the wake transition before the train actually
enters the section.  For each train run the barrier produces (wake time,
enter time, exit time) triples used to drive the node's state machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.traffic.timetable import TrainRun

__all__ = ["PhotoelectricBarrier"]


@dataclass(frozen=True)
class PhotoelectricBarrier:
    """Detection geometry of one coverage section [m along the segment]."""

    section_start_m: float
    section_end_m: float
    wake_lead_m: float = 50.0

    def __post_init__(self) -> None:
        if self.section_end_m <= self.section_start_m:
            raise ConfigurationError(
                f"section end {self.section_end_m} must exceed start {self.section_start_m}")
        if self.wake_lead_m < 0:
            raise ConfigurationError(f"wake lead must be >= 0, got {self.wake_lead_m}")

    def events_for(self, run: TrainRun, segment_length_m: float) -> tuple[float, float, float]:
        """(wake, enter, exit) times for one train run.

        ``wake`` is when the barrier (lead distance upstream) fires; ``enter``
        / ``exit`` delimit the train's overlap with the section itself.
        """
        enter, exit_ = run.interval_over(self.section_start_m, self.section_end_m,
                                         segment_length_m)
        wake = enter - self.wake_lead_m / run.train.speed_ms
        return wake, enter, exit_

    def lead_seconds(self, speed_ms: float) -> float:
        """Warning time the lead distance provides at a train speed."""
        if speed_ms <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed_ms}")
        return self.wake_lead_m / speed_ms

"""Energy accounting: integrates each unit's piecewise-constant power draw."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["EnergyRecorder"]


@dataclass
class _Track:
    power_w: float
    since_s: float
    energy_j: float = 0.0
    seconds_by_power: dict[float, float] = field(default_factory=dict)


@dataclass
class EnergyRecorder:
    """Accumulates energy per named unit from power-change notifications."""

    _tracks: dict[str, _Track] = field(default_factory=dict)
    _finalized_at: float | None = None

    def register(self, name: str, power_w: float, now_s: float) -> None:
        """Start tracking a unit at its current power."""
        if name in self._tracks:
            raise SimulationError(f"unit {name!r} registered twice")
        self._tracks[name] = _Track(power_w=power_w, since_s=now_s)

    def update(self, name: str, power_w: float, now_s: float) -> None:
        """The unit's draw changed at ``now_s``."""
        track = self._tracks.get(name)
        if track is None:
            raise SimulationError(f"unit {name!r} not registered")
        if now_s < track.since_s - 1e-9:
            raise SimulationError(
                f"unit {name!r}: time went backwards ({now_s} < {track.since_s})")
        elapsed = max(0.0, now_s - track.since_s)
        track.energy_j += track.power_w * elapsed
        track.seconds_by_power[track.power_w] = \
            track.seconds_by_power.get(track.power_w, 0.0) + elapsed
        track.power_w = power_w
        track.since_s = now_s

    def finalize(self, end_s: float) -> None:
        """Close all integration windows at the simulation end time."""
        for name in self._tracks:
            self.update(name, self._tracks[name].power_w, end_s)
        self._finalized_at = end_s

    # -- results ---------------------------------------------------------------

    def energy_wh(self, name: str) -> float:
        """Accumulated energy of one unit [Wh]."""
        if name not in self._tracks:
            raise SimulationError(f"unit {name!r} not registered")
        return self._tracks[name].energy_j / 3600.0

    def total_wh(self, prefix: str = "") -> float:
        """Total energy of all units whose name starts with ``prefix`` [Wh]."""
        return sum(t.energy_j for n, t in self._tracks.items()
                   if n.startswith(prefix)) / 3600.0

    def seconds_at(self, name: str, power_w: float) -> float:
        """Seconds one unit spent drawing exactly ``power_w`` [W].

        Only meaningful after :meth:`finalize`.  Distinct operating states
        that draw the same power (e.g. WAKING and NO_LOAD) are merged.
        """
        if name not in self._tracks:
            raise SimulationError(f"unit {name!r} not registered")
        return self._tracks[name].seconds_by_power.get(power_w, 0.0)

    def names(self) -> list[str]:
        return sorted(self._tracks)

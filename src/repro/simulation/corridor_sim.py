"""Simulation of one corridor segment over a timetable.

Builds the segment's elements (HP mast RRHs, service nodes, donor nodes) from
the shared :mod:`repro.simulation.elements` specs, feeds a timetable through
them and integrates energy.  Since PR 4 the heavy lifting happens in the
vectorized day engine (:func:`repro.simulation.batch.simulate_days`);
``engine="event"`` replays the same timetable through the scalar event queue
(photoelectric barrier -> power state machine -> energy recorder) and is the
bit-comparable escape hatch.  The result carries the same per-kilometre
figures as the analytic model for direct comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode
from repro.traffic.timetable import Timetable, generate_timetable

__all__ = ["CorridorSimulation", "SimulatedEnergy"]


@dataclass(frozen=True)
class SimulatedEnergy:
    """Energy outcome of a simulated corridor segment day.

    ``events_processed`` counts fired event-queue callbacks and is 0 under
    the batched engine (which has no event queue).
    """

    layout: CorridorLayout
    mode: OperatingMode
    horizon_s: float
    hp_wh: float
    service_wh: float
    donor_wh: float
    events_processed: int

    @property
    def total_mains_wh(self) -> float:
        if self.mode is OperatingMode.SOLAR:
            return self.hp_wh
        return self.hp_wh + self.service_wh + self.donor_wh

    @property
    def avg_w_per_km(self) -> float:
        """Average mains power per km — comparable to the analytic figure."""
        hours = self.horizon_s / 3600.0
        return self.total_mains_wh / hours / (self.layout.isd_m / 1000.0)


@dataclass
class CorridorSimulation:
    """One segment + timetable, ready to run.

    ``wake_lead_m`` positions every barrier; ``transition_s`` is the nodes'
    sleep/active transition time (the paper's "few hundred milliseconds").
    """

    layout: CorridorLayout
    mode: OperatingMode = OperatingMode.SLEEP
    params: EnergyParams = field(default_factory=EnergyParams)
    timetable: Timetable | None = None
    transition_s: float = constants.SLEEP_TRANSITION_S
    wake_lead_m: float = 50.0

    def __post_init__(self) -> None:
        if self.timetable is None:
            self.timetable = generate_timetable(self.params.traffic,
                                                segment_length_m=self.layout.isd_m)

    def run(self, engine: str = "batch") -> SimulatedEnergy:
        """Simulate the whole timetable horizon and integrate energy.

        ``engine="batch"`` (default) routes through the vectorized day
        engine; ``engine="event"`` walks the scalar event queue (identical
        results to ~1e-9, asserted in the cross-engine parity tests).
        """
        from repro.simulation.batch import simulate_days

        result = simulate_days(
            self.layout, mode=self.mode, params=self.params,
            timetables=(self.timetable,), transition_s=self.transition_s,
            wake_lead_m=self.wake_lead_m, engine=engine)
        return SimulatedEnergy(
            layout=self.layout,
            mode=self.mode,
            horizon_s=result.horizon_s,
            hp_wh=float(result.hp_wh[0]),
            service_wh=float(result.service_wh[0]),
            donor_wh=float(result.donor_wh[0]),
            events_processed=int(result.events_processed[0]),
        )

"""Event-driven simulation of one corridor segment over a timetable.

Builds the segment's devices (HP mast RRHs, service nodes, donor nodes), a
photoelectric barrier per device section, feeds a timetable through them and
integrates energy.  The result carries the same per-kilometre figures as the
analytic model for direct comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode
from repro.errors import ConfigurationError
from repro.simulation.detectors import PhotoelectricBarrier
from repro.simulation.engine import Simulator
from repro.simulation.recorder import EnergyRecorder
from repro.simulation.statemachine import PowerStateMachine
from repro.traffic.timetable import Timetable, generate_timetable

__all__ = ["CorridorSimulation", "SimulatedEnergy"]


@dataclass(frozen=True)
class SimulatedEnergy:
    """Energy outcome of an event-driven corridor segment simulation."""

    layout: CorridorLayout
    mode: OperatingMode
    horizon_s: float
    hp_wh: float
    service_wh: float
    donor_wh: float
    events_processed: int

    @property
    def total_mains_wh(self) -> float:
        if self.mode is OperatingMode.SOLAR:
            return self.hp_wh
        return self.hp_wh + self.service_wh + self.donor_wh

    @property
    def avg_w_per_km(self) -> float:
        """Average mains power per km — comparable to the analytic figure."""
        hours = self.horizon_s / 3600.0
        return self.total_mains_wh / hours / (self.layout.isd_m / 1000.0)


@dataclass
class CorridorSimulation:
    """One segment + timetable, ready to run.

    ``wake_lead_m`` positions every barrier; ``transition_s`` is the nodes'
    sleep/active transition time (the paper's "few hundred milliseconds").
    """

    layout: CorridorLayout
    mode: OperatingMode = OperatingMode.SLEEP
    params: EnergyParams = field(default_factory=EnergyParams)
    timetable: Timetable | None = None
    transition_s: float = constants.SLEEP_TRANSITION_S
    wake_lead_m: float = 50.0

    def __post_init__(self) -> None:
        if self.timetable is None:
            self.timetable = generate_timetable(self.params.traffic,
                                                segment_length_m=self.layout.isd_m)

    # -- device construction ---------------------------------------------------

    def _devices(self) -> list[tuple[str, PowerStateMachine, PhotoelectricBarrier]]:
        sleeping_lp = self.mode is not OperatingMode.CONTINUOUS
        p = self.params
        devices: list[tuple[str, PowerStateMachine, PhotoelectricBarrier]] = []

        hp_model = p.hp_profile.model
        mast = PowerStateMachine(
            name="hp/mast",
            full_load_w=p.rrh_per_mast * hp_model.full_load_w,
            no_load_w=p.rrh_per_mast * hp_model.no_load_w,
            sleep_w=p.rrh_per_mast * hp_model.p_sleep_w,
            sleep_capable=True,
            transition_s=self.transition_s,
        )
        devices.append(("hp/mast", mast,
                        PhotoelectricBarrier(0.0, self.layout.isd_m, self.wake_lead_m)))

        half = p.lp_section_m / 2.0
        for i, pos in enumerate(self.layout.repeater_positions_m):
            node = PowerStateMachine(
                name=f"service/{i}",
                full_load_w=p.lp_full_w,
                no_load_w=p.lp_no_load_w,
                sleep_w=p.lp_sleep_w,
                sleep_capable=sleeping_lp,
                transition_s=self.transition_s,
            )
            barrier = PhotoelectricBarrier(
                max(0.0, pos - half), min(self.layout.isd_m, pos + half),
                self.wake_lead_m)
            devices.append((node.name, node, barrier))

        # Donor nodes: active while a train overlaps their served span.
        positions = self.layout.repeater_positions_m
        n_donors = self.layout.n_donor_nodes
        if n_donors:
            if n_donors == 1:
                groups = [positions]
            else:
                split = (len(positions) + 1) // 2
                groups = [positions[:split], positions[split:]]
            for j, group in enumerate(groups):
                if not group:
                    continue
                donor = PowerStateMachine(
                    name=f"donor/{j}",
                    full_load_w=p.lp_full_w,
                    no_load_w=p.lp_no_load_w,
                    sleep_w=p.lp_sleep_w,
                    sleep_capable=sleeping_lp,
                    transition_s=self.transition_s,
                )
                barrier = PhotoelectricBarrier(
                    max(0.0, group[0] - half), min(self.layout.isd_m, group[-1] + half),
                    self.wake_lead_m)
                devices.append((donor.name, donor, barrier))
        return devices

    # -- execution ---------------------------------------------------------------

    def run(self) -> SimulatedEnergy:
        """Simulate the whole timetable horizon and integrate energy."""
        if self.timetable.horizon_s <= 0:
            raise ConfigurationError("timetable horizon must be positive")
        sim = Simulator()
        recorder = EnergyRecorder()
        devices = self._devices()
        for _, machine, __ in devices:
            machine.attach(recorder, sim)

        for run in self.timetable:
            for _, machine, barrier in devices:
                wake, enter, exit_ = barrier.events_for(run, self.layout.isd_m)
                if exit_ <= 0 or wake >= self.timetable.horizon_s:
                    continue
                if machine.sleep_capable:
                    sim.schedule_at(max(0.0, wake), machine.wake)
                sim.schedule_at(max(0.0, enter), machine.train_enter)
                sim.schedule_at(max(0.0, exit_), machine.train_exit)

        sim.run(until=self.timetable.horizon_s)
        recorder.finalize(self.timetable.horizon_s)

        return SimulatedEnergy(
            layout=self.layout,
            mode=self.mode,
            horizon_s=self.timetable.horizon_s,
            hp_wh=recorder.total_wh("hp/"),
            service_wh=recorder.total_wh("service/"),
            donor_wh=recorder.total_wh("donor/"),
            events_processed=sim.processed,
        )

"""Power state machine of a corridor radio unit.

States and transitions::

    SLEEP --wake()--> WAKING --(transition_s)--> NO_LOAD/FULL_LOAD
    NO_LOAD <--> FULL_LOAD        (load changes, instantaneous)
    any awake state --sleep()--> SLEEP   (instantaneous power drop)

During WAKING the unit already draws its awake power but cannot serve traffic
(the paper assumes "a few hundred milliseconds" transitions).  Sleep-incapable
units (continuous operation) idle at NO_LOAD instead of sleeping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simulation.engine import Simulator
from repro.simulation.recorder import EnergyRecorder

__all__ = ["NodeState", "PowerStateMachine"]


class NodeState(enum.Enum):
    SLEEP = "sleep"
    WAKING = "waking"
    NO_LOAD = "no_load"
    FULL_LOAD = "full_load"


@dataclass
class PowerStateMachine:
    """Tracks one unit's power state and reports draw changes to a recorder.

    ``occupancy`` counts trains currently inside the unit's coverage section;
    the unit is at FULL_LOAD whenever occupancy > 0.
    """

    name: str
    full_load_w: float
    no_load_w: float
    sleep_w: float
    sleep_capable: bool = True
    transition_s: float = 0.3

    def __post_init__(self) -> None:
        if not 0 <= self.sleep_w <= self.no_load_w <= self.full_load_w:
            raise SimulationError(
                f"{self.name}: expected sleep <= no-load <= full power, got "
                f"{self.sleep_w}/{self.no_load_w}/{self.full_load_w}")
        if self.transition_s < 0:
            raise SimulationError(f"{self.name}: transition time must be >= 0")
        self.state = NodeState.SLEEP if self.sleep_capable else NodeState.NO_LOAD
        self.occupancy = 0
        self._recorder: EnergyRecorder | None = None
        self._wake_event = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, recorder: EnergyRecorder, sim: Simulator) -> None:
        """Register with a recorder and remember the simulator clock."""
        self._recorder = recorder
        self._sim = sim
        recorder.register(self.name, self.power_w, sim.now)

    @property
    def power_w(self) -> float:
        """Current electrical draw of the unit."""
        if self.state is NodeState.SLEEP:
            return self.sleep_w
        if self.state is NodeState.FULL_LOAD:
            return self.full_load_w
        # WAKING draws awake power already; NO_LOAD is the idle draw.
        return self.no_load_w if self.state is not NodeState.WAKING else self.no_load_w

    def _set_state(self, state: NodeState) -> None:
        if state is self.state:
            return
        self.state = state
        if self._recorder is not None:
            self._recorder.update(self.name, self.power_w, self._sim.now)

    # -- commands -------------------------------------------------------------

    def wake(self) -> None:
        """Begin waking (detector fired).  No-op when already awake."""
        if not self.sleep_capable or self.state is not NodeState.SLEEP:
            return
        self._set_state(NodeState.WAKING)
        if self.transition_s == 0:
            self._finish_wake()
        else:
            self._wake_event = self._sim.schedule(self.transition_s, self._finish_wake)

    def _finish_wake(self) -> None:
        if self.state is not NodeState.WAKING:
            return
        self._set_state(NodeState.FULL_LOAD if self.occupancy > 0 else NodeState.NO_LOAD)

    def try_sleep(self) -> None:
        """Go to sleep if idle (no trains in section)."""
        if not self.sleep_capable:
            self._set_state(NodeState.FULL_LOAD if self.occupancy > 0 else NodeState.NO_LOAD)
            return
        if self.occupancy == 0:
            if self._wake_event is not None:
                self._wake_event.cancel()
                self._wake_event = None
            self._set_state(NodeState.SLEEP)

    def train_enter(self) -> None:
        """A train entered the coverage section."""
        self.occupancy += 1
        if self.state in (NodeState.NO_LOAD, NodeState.FULL_LOAD):
            self._set_state(NodeState.FULL_LOAD)
        elif self.state is NodeState.SLEEP:
            # Detector missed or absent: wake now (late wake, service gap).
            self.wake()

    def train_exit(self) -> None:
        """A train left the coverage section."""
        if self.occupancy <= 0:
            raise SimulationError(f"{self.name}: train_exit with occupancy 0")
        self.occupancy -= 1
        if self.occupancy == 0 and self.state is NodeState.FULL_LOAD:
            self._set_state(NodeState.NO_LOAD)
            self.try_sleep()

"""Discrete-event simulation of the corridor's sleep-mode operation.

The analytic energy model (:mod:`repro.energy`) assumes ideal, instantaneous
state switching.  This package simulates the corridor event by event — trains
move, photoelectric barriers fire, nodes wake with a finite transition time,
energy integrates over the actual power trajectory — providing an independent
cross-check of the analytic numbers and a way to quantify non-idealities
(wake latency, detection margins, irregular timetables).
"""

from repro.simulation.engine import Simulator
from repro.simulation.statemachine import NodeState, PowerStateMachine
from repro.simulation.detectors import PhotoelectricBarrier
from repro.simulation.recorder import EnergyRecorder
from repro.simulation.elements import ElementSpec, corridor_elements
from repro.simulation.batch import DayBatchResult, simulate_days
from repro.simulation.corridor_sim import CorridorSimulation, SimulatedEnergy

__all__ = [
    "Simulator",
    "NodeState",
    "PowerStateMachine",
    "PhotoelectricBarrier",
    "EnergyRecorder",
    "ElementSpec",
    "corridor_elements",
    "DayBatchResult",
    "simulate_days",
    "CorridorSimulation",
    "SimulatedEnergy",
]

"""Shared element construction for the corridor simulation engines.

One segment is simulated as a set of *elements* — the HP mast (all its RRHs
jointly), the LP service nodes and the donor nodes.  Both simulation engines
(:mod:`repro.simulation.corridor_sim`'s event queue and the vectorized
:mod:`repro.simulation.batch`) build their devices from the same
:func:`corridor_elements` list, so the element order, coverage sections and
power levels are identical by construction and cross-engine parity reduces to
the time-integration semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode
from repro.errors import ConfigurationError, SimulationError

__all__ = ["ElementSpec", "corridor_elements"]


@dataclass(frozen=True)
class ElementSpec:
    """One simulated radio unit: power levels and coverage section.

    ``kind`` is the equipment class (``"hp"``, ``"service"`` or ``"donor"``)
    used for the per-class energy splits; ``name`` keeps the event engine's
    ``hp/mast`` / ``service/i`` / ``donor/j`` convention.
    """

    name: str
    kind: str
    full_load_w: float
    no_load_w: float
    sleep_w: float
    sleep_capable: bool
    section_start_m: float
    section_end_m: float

    def __post_init__(self) -> None:
        if not 0 <= self.sleep_w <= self.no_load_w <= self.full_load_w:
            raise SimulationError(
                f"{self.name}: expected sleep <= no-load <= full power, got "
                f"{self.sleep_w}/{self.no_load_w}/{self.full_load_w}")
        if self.section_end_m <= self.section_start_m:
            raise ConfigurationError(
                f"{self.name}: section end {self.section_end_m} must exceed "
                f"start {self.section_start_m}")


def corridor_elements(layout: CorridorLayout,
                      mode: OperatingMode = OperatingMode.SLEEP,
                      params: EnergyParams | None = None) -> tuple[ElementSpec, ...]:
    """Element list of one segment, in the event engine's scheduling order.

    The HP mast serves the whole segment with all its RRHs; each service node
    owns a node-spacing-long section around its position; donor nodes are
    active while a train overlaps the span of their served node group
    (Section V-A's donor counting rule).  Low-power nodes are sleep-capable
    unless the policy is :attr:`OperatingMode.CONTINUOUS`.

    Args:
        layout: The corridor geometry (HP masts + repeater field).
        mode: Operating policy, which decides sleep capability and the LP
            power draws.
        params: Energy parameters (paper defaults when ``None``).

    Returns:
        The ordered :class:`ElementSpec` tuple shared by both engines.
    """
    params = params or EnergyParams()
    sleeping_lp = mode is not OperatingMode.CONTINUOUS
    elements: list[ElementSpec] = []

    hp_model = params.hp_profile.model
    elements.append(ElementSpec(
        name="hp/mast", kind="hp",
        full_load_w=params.rrh_per_mast * hp_model.full_load_w,
        no_load_w=params.rrh_per_mast * hp_model.no_load_w,
        sleep_w=params.rrh_per_mast * hp_model.p_sleep_w,
        sleep_capable=True,
        section_start_m=0.0, section_end_m=layout.isd_m))

    half = params.lp_section_m / 2.0
    for i, pos in enumerate(layout.repeater_positions_m):
        elements.append(ElementSpec(
            name=f"service/{i}", kind="service",
            full_load_w=params.lp_full_w,
            no_load_w=params.lp_no_load_w,
            sleep_w=params.lp_sleep_w,
            sleep_capable=sleeping_lp,
            section_start_m=max(0.0, pos - half),
            section_end_m=min(layout.isd_m, pos + half)))

    positions = layout.repeater_positions_m
    n_donors = layout.n_donor_nodes
    if n_donors:
        if n_donors == 1:
            groups = [positions]
        else:
            split = (len(positions) + 1) // 2
            groups = [positions[:split], positions[split:]]
        for j, group in enumerate(groups):
            if not group:
                continue
            elements.append(ElementSpec(
                name=f"donor/{j}", kind="donor",
                full_load_w=params.lp_full_w,
                no_load_w=params.lp_no_load_w,
                sleep_w=params.lp_sleep_w,
                sleep_capable=sleeping_lp,
                section_start_m=max(0.0, group[0] - half),
                section_end_m=min(layout.isd_m, group[-1] + half)))
    return tuple(elements)

"""Vectorized corridor day-simulation engine.

The event engine (:mod:`repro.simulation.corridor_sim`) walks one timetable
realization at a time through a scalar event queue.  This module replaces the
per-event walk with **interval-overlap algebra**: each element's active time
is the measure of the union of train-passage intervals over its coverage
section, computed on stacked ``[realization, element, run]`` tensors, so
hundreds of seeded Poisson-timetable days evaluate in one pass.

How the event semantics map onto interval algebra
-------------------------------------------------

Per (realization, element) lane the event engine's trajectory is determined
by three facts:

* the unit draws ``no_load_w`` during both WAKING and NO_LOAD, so energy only
  depends on the *awake* measure (time not asleep) and the *full-load*
  measure;
* occupancy is the union of the per-run ``[enter, exit)`` intervals over the
  element's section — merged into disjoint *groups* with a cumulative-max
  scan;
* the unit sleeps exactly at a group end that falls strictly after the
  current wake transition finishes, and re-wakes at the earlier of the next
  barrier wake event and the next group start (a late wake).  Full load is
  occupancy minus the per-cycle waking windows.

Event times are computed with the same floating-point expressions as
:meth:`repro.traffic.timetable.TrainRun.interval_over` /
:meth:`repro.simulation.detectors.PhotoelectricBarrier.events_for`, so both
engines see bit-identical event instants; the derived measures and energies
agree to ~1e-9 (they only differ by floating-point summation order).  Exact
event *ties* (two events at the same float instant on one element) follow the
event queue's scheduling order in the event engine and the documented
half-open convention here — they do not occur on non-degenerate timetables.

``engine="event"`` replays the same timetables through the event queue (one
:class:`~repro.simulation.engine.Simulator` per realization) and returns the
same per-element structure — the escape hatch the cross-engine parity tests
and ``benchmarks/bench_sim_batch.py`` compare against.  Stochastic fleets use
the common-random-number seeding of
:func:`repro.traffic.timetable.day_timetables` (``default_rng([seed, r])``,
matching :mod:`repro.optimize.mc`), so realization ``r`` is the same Poisson
day for every layout/policy sharing a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode
from repro.errors import ConfigurationError
from repro.kernels import occupancy_scan
from repro.optimize.mc import readonly_array
from repro.simulation.elements import ElementSpec, corridor_elements
from repro.traffic.timetable import Timetable, day_timetables, generate_timetable

__all__ = ["DayBatchResult", "simulate_days"]

_ENGINES = ("batch", "event")


@dataclass(frozen=True, eq=False)
class DayBatchResult:
    """Stacked outcome of a fleet of simulated days.

    ``active_s`` / ``awake_s`` / ``energy_wh`` are ``[realization, element]``
    arrays (read-only): seconds at full load, seconds not asleep, and energy.
    Element order matches :func:`repro.simulation.elements.corridor_elements`.
    """

    layout: CorridorLayout
    mode: OperatingMode
    horizon_s: float
    element_names: tuple[str, ...]
    element_kinds: tuple[str, ...]
    active_s: np.ndarray
    awake_s: np.ndarray
    energy_wh: np.ndarray
    events_processed: np.ndarray
    engine: str

    def __post_init__(self) -> None:
        for name in ("active_s", "awake_s", "energy_wh", "events_processed"):
            object.__setattr__(self, name, readonly_array(getattr(self, name)))

    @property
    def realizations(self) -> int:
        return self.active_s.shape[0]

    def _kind_wh(self, kind: str) -> np.ndarray:
        mask = np.array([k == kind for k in self.element_kinds])
        return self.energy_wh[:, mask].sum(axis=1)

    @property
    def hp_wh(self) -> np.ndarray:
        return self._kind_wh("hp")

    @property
    def service_wh(self) -> np.ndarray:
        return self._kind_wh("service")

    @property
    def donor_wh(self) -> np.ndarray:
        return self._kind_wh("donor")

    @property
    def total_mains_wh(self) -> np.ndarray:
        """Per-realization mains energy (SOLAR powers the LP nodes off-grid)."""
        if self.mode is OperatingMode.SOLAR:
            return self.hp_wh
        return self.hp_wh + self.service_wh + self.donor_wh

    @property
    def avg_w_per_km(self) -> np.ndarray:
        """Per-realization average mains power per km (the Fig. 4 quantity)."""
        hours = self.horizon_s / 3600.0
        return self.total_mains_wh / hours / (self.layout.isd_m / 1000.0)

    def mean_w_per_km(self) -> float:
        """Fleet-mean average mains power per km (the Fig. 4 quantity)."""
        return float(np.mean(self.avg_w_per_km))

    def std_w_per_km(self) -> float:
        """Sample standard deviation across realizations (0 for one day)."""
        values = self.avg_w_per_km
        if values.size < 2:
            return 0.0
        return float(np.std(values, ddof=1))

    def ci95_w_per_km(self) -> tuple[float, float]:
        """Normal-approximation 95% CI of the mean W/km across realizations."""
        mean = self.mean_w_per_km()
        half = 1.959963984540054 * self.std_w_per_km() / np.sqrt(self.realizations)
        return float(mean - half), float(mean + half)


# -- input assembly --------------------------------------------------------------


def _resolve_timetables(params: EnergyParams, layout: CorridorLayout,
                        timetables, realizations, stochastic: bool,
                        seed: int, days: float) -> tuple[Timetable, ...]:
    if timetables is not None:
        resolved = tuple(timetables)
        if realizations is not None and realizations != len(resolved):
            raise ConfigurationError(
                "pass either explicit timetables or a realization count, "
                "not a conflicting pair")
    elif stochastic:
        resolved = day_timetables(params.traffic,
                                  realizations=1 if realizations is None else realizations,
                                  seed=seed, days=days,
                                  segment_length_m=layout.isd_m)
    else:
        base = generate_timetable(params.traffic, days=days,
                                  segment_length_m=layout.isd_m)
        resolved = (base,) * (1 if realizations is None else max(1, realizations))
    if not resolved:
        raise ConfigurationError("need at least one timetable realization")
    horizons = {tt.horizon_s for tt in resolved}
    if len(horizons) != 1:
        raise ConfigurationError(
            f"all realizations must share one horizon, got {sorted(horizons)}")
    if next(iter(horizons)) <= 0:
        raise ConfigurationError("timetable horizon must be positive")
    return resolved


def _run_tensors(timetables: tuple[Timetable, ...]):
    """Pack the fleet into padded [realization, run] arrays."""
    n_max = max(len(tt) for tt in timetables)
    shape = (len(timetables), max(n_max, 1))
    t0 = np.zeros(shape)
    speed = np.ones(shape)
    length = np.zeros(shape)
    direction = np.ones(shape)
    valid = np.zeros(shape, dtype=bool)
    for r, tt in enumerate(timetables):
        for n, run in enumerate(tt):
            t0[r, n] = run.t0_s
            speed[r, n] = run.train.speed_ms
            length[r, n] = run.train.length_m
            direction[r, n] = run.direction
            valid[r, n] = True
    return t0, speed, length, direction, valid


# -- the batched kernel ----------------------------------------------------------


def _simulate_batch(specs: tuple[ElementSpec, ...],
                    timetables: tuple[Timetable, ...],
                    seg_m: float, horizon_s: float, transition_s: float,
                    wake_lead_m: float, backend: str | None = None):
    n_real, n_elem = len(timetables), len(specs)
    t0, speed, length, direction, valid = _run_tensors(timetables)
    n_runs = t0.shape[1]

    start = np.array([s.section_start_m for s in specs])[None, :, None]
    end = np.array([s.section_end_m for s in specs])[None, :, None]
    seg = seg_m

    t0 = t0[:, None, :]
    v = speed[:, None, :]
    length3 = length[:, None, :]
    d = direction[:, None, :]
    valid3 = np.broadcast_to(valid[:, None, :], (n_real, n_elem, n_runs))

    # Same float expressions as TrainRun.interval_over / events_for, so event
    # instants are bit-identical across engines.
    enter = t0 + np.where(d == 1, start, seg - end) / v
    exit_ = t0 + np.where(d == 1, end + length3, (seg - start) + length3) / v
    wake = enter - wake_lead_m / v

    alive = valid3 & (exit_ > 0.0) & (wake < horizon_s)

    enter_c = np.maximum(0.0, enter)
    exit_c = np.maximum(0.0, exit_)
    wake_c = np.maximum(0.0, wake)

    lanes = n_real * n_elem
    occupied = alive & (enter_c <= horizon_s)
    a = np.where(occupied, enter_c, np.inf).reshape(lanes, n_runs)
    b = np.where(occupied, np.minimum(exit_c, horizon_s), np.inf).reshape(lanes, n_runs)

    # Merge per-lane [enter, exit) intervals into disjoint occupancy groups.
    order = np.argsort(a, axis=1, kind="stable")
    a_s = np.take_along_axis(a, order, axis=1)
    b_s = np.take_along_axis(b, order, axis=1)
    cummax_b = np.maximum.accumulate(b_s, axis=1)
    new_group = np.ones((lanes, n_runs), dtype=bool)
    # Touching intervals (next enter == previous exit) do NOT merge: the event
    # queue fires the earlier run's exit first, so the unit sleeps and takes a
    # late wake (a measure-zero convention on real timetables).
    new_group[:, 1:] = a_s[:, 1:] >= cummax_b[:, :-1]
    finite = a_s < np.inf
    gid = np.cumsum(new_group, axis=1) - 1

    g_a = np.full((lanes, n_runs), np.inf)
    g_b = np.full((lanes, n_runs), np.inf)
    lane_idx = np.broadcast_to(np.arange(lanes)[:, None], (lanes, n_runs))
    first = new_group & finite
    g_a[lane_idx[first], gid[first]] = a_s[first]
    is_last = np.ones((lanes, n_runs), dtype=bool)
    is_last[:, :-1] = new_group[:, 1:]
    last = is_last & finite
    g_b[lane_idx[last], gid[last]] = cummax_b[last]
    n_groups = np.where(finite, gid + 1, 0).max(axis=1)

    has_group = g_a < np.inf
    occ_total = (np.where(has_group, g_b, 0.0)
                 - np.where(has_group, g_a, 0.0)).sum(axis=1)

    # First barrier wake strictly after each candidate sleep time.  Queries
    # are (sentinel -1, group end 0, group end 1, ...); both sides are sorted,
    # so one stable argsort of the concatenation yields every rank at once.
    wk = np.sort(np.where(alive, wake_c, np.inf).reshape(lanes, n_runs), axis=1)
    queries = np.concatenate([np.full((lanes, 1), -1.0), g_b], axis=1)
    combined = np.concatenate([wk, queries], axis=1)
    ranks = np.empty_like(combined, dtype=np.int64)
    np.put_along_axis(
        ranks, np.argsort(combined, axis=1, kind="stable"),
        np.broadcast_to(np.arange(combined.shape[1]), combined.shape), axis=1)
    count_le = ranks[:, n_runs:] - np.arange(n_runs + 1)
    wk_ext = np.concatenate([wk, np.full((lanes, 1), np.inf)], axis=1)
    first_wake_after = np.take_along_axis(wk_ext, count_le, axis=1)

    # Sequential scan over occupancy groups (the only loop), delegated to
    # the :func:`repro.kernels.occupancy_scan` kernel: track the open wake
    # cycle per lane.  A cycle opens at min(next wake, group start),
    # finishes waking transition_s later, and closes at the first group end
    # strictly after the finish (the unit stays awake through group ends that
    # land inside the transition — the event engine's "missed sleep" case).
    awake_time, waking_occ = occupancy_scan(
        g_a, g_b, first_wake_after, n_groups, transition_s, horizon_s,
        backend=backend)

    capable = np.array([s.sleep_capable for s in specs])
    capable_l = np.broadcast_to(capable[None, :], (n_real, n_elem)).reshape(lanes)
    awake_s = np.where(capable_l, awake_time, horizon_s)
    active_s = np.where(capable_l, occ_total - waking_occ, occ_total)

    full_w = np.array([s.full_load_w for s in specs])
    no_load_w = np.array([s.no_load_w for s in specs])
    sleep_w = np.array([s.sleep_w for s in specs])
    full_l = np.broadcast_to(full_w[None, :], (n_real, n_elem)).reshape(lanes)
    no_l = np.broadcast_to(no_load_w[None, :], (n_real, n_elem)).reshape(lanes)
    sl_l = np.broadcast_to(sleep_w[None, :], (n_real, n_elem)).reshape(lanes)
    energy_j = (sl_l * (horizon_s - awake_s)
                + no_l * (awake_s - active_s)
                + full_l * active_s)

    shape = (n_real, n_elem)
    return (active_s.reshape(shape), awake_s.reshape(shape),
            (energy_j / 3600.0).reshape(shape),
            np.zeros(n_real, dtype=np.int64))


# -- the event escape hatch ------------------------------------------------------


def _simulate_event(specs: tuple[ElementSpec, ...],
                    timetables: tuple[Timetable, ...],
                    seg_m: float, horizon_s: float, transition_s: float,
                    wake_lead_m: float):
    """Replay the fleet through the scalar event queue, one day at a time.

    Per-state seconds are read back from the recorder's time-at-power
    accounting, which assumes the three power levels of an element are
    pairwise distinct (true for the paper's Table II/III parameters);
    energies are exact regardless.
    """
    from repro.simulation.detectors import PhotoelectricBarrier
    from repro.simulation.engine import Simulator
    from repro.simulation.recorder import EnergyRecorder
    from repro.simulation.statemachine import PowerStateMachine

    seg = seg_m
    shape = (len(timetables), len(specs))
    active_s = np.zeros(shape)
    awake_s = np.zeros(shape)
    energy_wh = np.zeros(shape)
    events = np.zeros(len(timetables), dtype=np.int64)

    for r, timetable in enumerate(timetables):
        sim = Simulator()
        recorder = EnergyRecorder()
        devices = []
        for spec in specs:
            machine = PowerStateMachine(
                name=spec.name, full_load_w=spec.full_load_w,
                no_load_w=spec.no_load_w, sleep_w=spec.sleep_w,
                sleep_capable=spec.sleep_capable, transition_s=transition_s)
            machine.attach(recorder, sim)
            devices.append((machine, PhotoelectricBarrier(
                spec.section_start_m, spec.section_end_m, wake_lead_m)))

        for run in timetable:
            for machine, barrier in devices:
                wake, enter, exit_ = barrier.events_for(run, seg)
                if exit_ <= 0 or wake >= horizon_s:
                    continue
                if machine.sleep_capable:
                    sim.schedule_at(max(0.0, wake), machine.wake)
                sim.schedule_at(max(0.0, enter), machine.train_enter)
                sim.schedule_at(max(0.0, exit_), machine.train_exit)

        sim.run(until=horizon_s)
        recorder.finalize(horizon_s)
        events[r] = sim.processed
        for e, spec in enumerate(specs):
            active_s[r, e] = recorder.seconds_at(spec.name, spec.full_load_w)
            awake_s[r, e] = (
                horizon_s - recorder.seconds_at(spec.name, spec.sleep_w)
                if spec.sleep_capable else horizon_s)
            energy_wh[r, e] = recorder.energy_wh(spec.name)
    return active_s, awake_s, energy_wh, events


# -- public entry point ----------------------------------------------------------


def simulate_days(layout: CorridorLayout,
                  mode: OperatingMode = OperatingMode.SLEEP,
                  params: EnergyParams | None = None,
                  timetables=None,
                  realizations: int | None = None,
                  stochastic: bool = False,
                  seed: int = 0,
                  days: float = 1.0,
                  transition_s: float = constants.SLEEP_TRANSITION_S,
                  wake_lead_m: float = 50.0,
                  engine: str = "batch",
                  backend: str | None = None) -> DayBatchResult:
    """Simulate a fleet of corridor days and integrate per-element energy.

    Either pass explicit ``timetables`` (one per realization, sharing one
    horizon) or let the engine generate them: ``stochastic=True`` draws
    ``realizations`` seeded Poisson days under common random numbers
    (:func:`repro.traffic.timetable.day_timetables`), otherwise the
    deterministic Table III timetable is replicated.

    ``engine="batch"`` (default) evaluates the whole fleet as stacked
    ``[realization, element, run]`` interval tensors; ``engine="event"`` is
    the scalar event-queue escape hatch.  Both return the same per-element
    active seconds, awake seconds and energies (equal to ~1e-9; asserted in
    ``tests/test_engine_parity.py`` and gated at >= 10x speedup in
    ``benchmarks/bench_sim_batch.py``).

    Args:
        layout: The corridor geometry (one segment).
        mode: Operating policy of the LP nodes.
        params: Energy parameters (paper defaults when ``None``).
        timetables: Explicit day timetables, one per realization (all
            sharing one horizon); mutually exclusive with ``realizations``.
        realizations: Number of generated days when ``timetables`` is None.
        stochastic: Draw seeded Poisson days (``default_rng([seed, r])``)
            instead of replicating the deterministic Table III day.
        seed: Root seed of the stochastic fleet.
        days: Horizon length in days for generated timetables.
        transition_s: Sleep/wake transition time [s].
        wake_lead_m: Wake-up lead distance ahead of an approaching train [m].
        engine: ``"batch"`` (default) or the ``"event"`` escape hatch.
        backend: Kernel backend for the batch engine's group scan
            (``None`` resolves via ``REPRO_BACKEND``); ignored by
            ``engine="event"``.

    Returns:
        The :class:`DayBatchResult` with read-only ``[realization, element]``
        tensors.

    Raises:
        ConfigurationError: On an unknown engine, negative transition/lead,
            or inconsistent timetable horizons.
    """
    if engine not in _ENGINES:
        raise ConfigurationError(
            f"engine must be one of {_ENGINES}, got {engine!r}")
    if transition_s < 0:
        raise ConfigurationError(
            f"transition time must be >= 0, got {transition_s}")
    if wake_lead_m < 0:
        raise ConfigurationError(f"wake lead must be >= 0, got {wake_lead_m}")
    params = params or EnergyParams()
    resolved = _resolve_timetables(params, layout, timetables, realizations,
                                   stochastic, seed, days)
    specs = corridor_elements(layout, mode, params)
    horizon = resolved[0].horizon_s

    if engine == "batch":
        active_s, awake_s, energy_wh, events = _simulate_batch(
            specs, resolved, layout.isd_m, horizon,
            float(transition_s), float(wake_lead_m), backend=backend)
    else:
        active_s, awake_s, energy_wh, events = _simulate_event(
            specs, resolved, layout.isd_m, horizon,
            float(transition_s), float(wake_lead_m))

    return DayBatchResult(
        layout=layout, mode=mode, horizon_s=horizon,
        element_names=tuple(s.name for s in specs),
        element_kinds=tuple(s.kind for s in specs),
        active_s=active_s, awake_s=awake_s, energy_wh=energy_wh,
        events_processed=events, engine=engine)

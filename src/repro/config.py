"""Scenario configuration: one serializable object tying the models together.

A :class:`ScenarioConfig` captures everything needed to rerun an evaluation —
link constants, traffic scenario, power parameters, solar system — and round-
trips through JSON so experiment configurations can be stored alongside their
results.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["ScenarioConfig", "load_config", "save_config"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Flat, serializable snapshot of a corridor evaluation scenario.

    This intentionally mirrors the paper's parameter tables rather than the
    internal object graph: the builder methods construct the typed model
    objects from it.
    """

    # Link / capacity (Section III-A)
    carrier_frequency_hz: float = constants.DEFAULT_CARRIER_FREQUENCY_HZ
    bandwidth_hz: float = constants.NR_CARRIER_BANDWIDTH_HZ
    n_subcarriers: int = constants.NR_SUBCARRIER_COUNT
    hp_eirp_dbm: float = constants.HP_EIRP_DBM
    lp_eirp_dbm: float = constants.LP_EIRP_DBM
    hp_calibration_db: float = constants.HP_CALIBRATION_DB
    lp_calibration_db: float = constants.LP_CALIBRATION_DB
    repeater_noise_model: str = "paper"
    fronthaul_snr_at_1km_db: float = 33.0

    # Traffic (Table III)
    trains_per_hour: float = constants.TRAINS_PER_HOUR
    night_quiet_hours: float = constants.NIGHT_QUIET_HOURS
    train_length_m: float = constants.TRAIN_LENGTH_M
    train_speed_kmh: float = constants.TRAIN_SPEED_KMH
    lp_node_spacing_m: float = constants.LP_NODE_SPACING_M

    # Corridor
    conventional_isd_m: float = constants.CONVENTIONAL_ISD_M

    # Solar (Section IV-B)
    pv_peak_w: float = constants.PV_DEFAULT_PEAK_W
    battery_wh: float = constants.BATTERY_DEFAULT_WH
    battery_cutoff: float = constants.BATTERY_DISCHARGE_CUTOFF
    solar_seed: int = 2022

    def __post_init__(self) -> None:
        if self.repeater_noise_model not in ("paper", "fronthaul_star", "fronthaul_chain"):
            raise ConfigurationError(
                f"unknown repeater noise model {self.repeater_noise_model!r}")
        if self.carrier_frequency_hz <= 0 or self.bandwidth_hz <= 0:
            raise ConfigurationError("carrier frequency and bandwidth must be positive")
        if self.trains_per_hour < 0:
            raise ConfigurationError("trains per hour must be >= 0")

    # -- builders --------------------------------------------------------------

    def link_params(self):
        """Build :class:`repro.radio.link.LinkParams` from this scenario."""
        from repro.propagation.fronthaul import FronthaulParams, FronthaulTopology
        from repro.radio.carrier import NrCarrier
        from repro.radio.link import LinkParams
        from repro.radio.noise import RepeaterNoiseModel

        topology = (FronthaulTopology.CHAIN
                    if self.repeater_noise_model == "fronthaul_chain"
                    else FronthaulTopology.STAR)
        return LinkParams(
            carrier=NrCarrier(self.carrier_frequency_hz, self.bandwidth_hz,
                              self.n_subcarriers),
            hp_eirp_dbm=self.hp_eirp_dbm,
            lp_eirp_dbm=self.lp_eirp_dbm,
            hp_calibration_db=self.hp_calibration_db,
            lp_calibration_db=self.lp_calibration_db,
            repeater_noise_model=RepeaterNoiseModel(self.repeater_noise_model),
            fronthaul=FronthaulParams(snr_at_1km_db=self.fronthaul_snr_at_1km_db,
                                      topology=topology),
        )

    def traffic_params(self):
        """Build :class:`repro.traffic.trains.TrafficParams`."""
        from repro.traffic.trains import TrafficParams, Train
        return TrafficParams(
            trains_per_hour=self.trains_per_hour,
            night_quiet_hours=self.night_quiet_hours,
            train=Train(length_m=self.train_length_m, speed_kmh=self.train_speed_kmh),
        )

    def energy_params(self):
        """Build :class:`repro.energy.duty.EnergyParams`."""
        from repro.energy.duty import EnergyParams
        return EnergyParams(traffic=self.traffic_params(),
                            lp_section_m=self.lp_node_spacing_m)

    # -- serialization -----------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(asdict(self), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioConfig":
        data = json.loads(text)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown config keys: {sorted(unknown)}")
        return cls(**data)


def save_config(config: ScenarioConfig, path: str | Path) -> Path:
    """Write a scenario to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(config.to_json())
    return path


def load_config(path: str | Path) -> ScenarioConfig:
    """Read a scenario from a JSON file."""
    return ScenarioConfig.from_json(Path(path).read_text())

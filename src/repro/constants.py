"""Physical constants and every numeric constant published in the paper.

Single source of truth: other modules import from here instead of re-typing
magic numbers.  Where the paper is internally inconsistent (see DESIGN.md
section 4) the paper's published value is kept and the discrepancy noted.
"""

from __future__ import annotations

SPEED_OF_LIGHT_M_S = 299_792_458.0

# --- 5G NR carrier (Section III-A) ------------------------------------------
#: Default sub-6 GHz carrier frequency.  The paper only says "sub-6 GHz"; 3.5
#: GHz (band n78) is the common European railway-corridor band and matches the
#: registered N=1 maximum ISD of 1250 m.
DEFAULT_CARRIER_FREQUENCY_HZ = 3.5e9
#: Carrier bandwidth considered in the paper.
NR_CARRIER_BANDWIDTH_HZ = 100e6
#: Number of subcarriers the paper divides total power by (Section III-A).
NR_SUBCARRIER_COUNT = 3300

# --- Transmit powers (Section V) --------------------------------------------
#: High-power RRH EIRP: 2500 W = 64 dBm per antenna.
HP_EIRP_DBM = 64.0
#: Low-power repeater EIRP: 10 W = 40 dBm.
LP_EIRP_DBM = 40.0

# --- Calibration factors (Eq. 1) --------------------------------------------
#: Calibration of HP port-to-port attenuation, includes losses into wagons.
HP_CALIBRATION_DB = 33.0
#: Calibration of LP repeater port-to-port attenuation.
LP_CALIBRATION_DB = 20.0

# --- Noise (Eq. 2) -----------------------------------------------------------
#: Thermal noise floor per subcarrier (paper value; corresponds to a 15 kHz
#: subcarrier although 3300 subcarriers in 100 MHz imply 30 kHz — kept as
#: published, see DESIGN.md #5).
NOISE_FLOOR_RSRP_DBM = -132.0
#: Noise figure of a typical mobile terminal.
TERMINAL_NOISE_FIGURE_DB = 5.0
#: Noise figure of the low-power repeater node.
REPEATER_NOISE_FIGURE_DB = 8.0

# --- Throughput model (3GPP TR 36.942 A.2, Section III-A) --------------------
#: Attenuation factor alpha of the truncated Shannon bound.
THROUGHPUT_ALPHA = 0.6
#: Maximum spectral efficiency of 5G NR considered by the paper [bps/Hz].
THROUGHPUT_MAX_BPS_HZ = 5.84
#: Lower SNR limit of the truncated Shannon bound per TR 36.942 [dB].
THROUGHPUT_MIN_SNR_DB = -10.0
#: The paper's stated peak-throughput criterion for the ISD sweep:
#: "the throughput still matches the peak throughput of 5G NR at an
#: SNR > 29 dB" (Section V).  The exact saturation point of the truncated
#: Shannon bound is 29.30 dB; using the stated 29.0 dB reproduces the
#: registered ISD list exactly for N = 1..4 (see DESIGN.md #4.1).
PEAK_SNR_CRITERION_DB = 29.0

# --- Power model parameters (Table II, per radio unit) -----------------------
HP_RRH_PMAX_W = 40.0
HP_RRH_P0_W = 168.0
HP_RRH_DELTA_P = 2.8
HP_RRH_PSLEEP_W = 112.0

LP_REPEATER_PMAX_W = 1.0
LP_REPEATER_P0_W = 24.26
LP_REPEATER_DELTA_P = 4.0
LP_REPEATER_PSLEEP_W = 4.72

#: RRHs (sectors) per high-power mast: two antennas mounted back-to-back.
RRH_PER_MAST = 2

# --- Derived site-level powers quoted in Section III-B -----------------------
HP_SITE_FULL_LOAD_W = 560.0   # 2 x (168 + 2.8 * 40)
HP_SITE_NO_LOAD_W = 336.0     # 2 x 168
HP_SITE_SLEEP_W = 224.0       # 2 x 112

#: Table I / Table III full-load repeater power (TDD, one direction driven).
LP_REPEATER_FULL_LOAD_W = 28.38
#: Table III value rounded in the paper's table ("28.4 W").
LP_REPEATER_FULL_LOAD_TABLE3_W = 28.4

# --- Traffic scenario (Table III) --------------------------------------------
TRAINS_PER_HOUR = 8
NIGHT_QUIET_HOURS = 5.0
TRAIN_LENGTH_M = 400.0
TRAIN_SPEED_KMH = 200.0
LP_NODE_SPACING_M = 200.0

# --- Corridor ----------------------------------------------------------------
#: Conventional corridor inter-site distance (scenario constant, Section I/V).
CONVENTIONAL_ISD_M = 500.0
#: Catenary masts are generally available every 50 m (Section III).
CATENARY_MAST_SPACING_M = 50.0
#: ISD sweep granularity used by the paper (Section V).
ISD_STEP_M = 50.0

#: Registered maximum ISDs from Section V for N = 1..10 repeater nodes [m].
PAPER_MAX_ISD_M = (1250.0, 1450.0, 1600.0, 1800.0, 1950.0,
                   2100.0, 2250.0, 2400.0, 2500.0, 2650.0)

#: Average power of a sleeping-capable LP node quoted in Section V-A.
PAPER_LP_AVG_SLEEP_W = 5.17
PAPER_LP_AVG_SLEEP_WH_PER_DAY = 124.1

# --- Solar study (Section IV-B, Table IV) -------------------------------------
PV_MODULE_PEAK_W = 180.0
PV_MODULES_PER_MAST = 3
PV_DEFAULT_PEAK_W = 540.0        # 3 x 180 Wp
PV_BERLIN_PEAK_W = 600.0
BATTERY_DEFAULT_WH = 720.0
BATTERY_DOUBLED_WH = 1440.0
BATTERY_DISCHARGE_CUTOFF = 0.40  # fraction of capacity
PV_TILT_DEG = 90.0               # vertical mounting on catenary masts
PV_AZIMUTH_DEG = 0.0             # facing the equator (PVGIS convention)

#: Table IV "Days with full battery" [%] as published.
PAPER_FULL_BATTERY_DAYS_PCT = {
    "madrid": 98.13,
    "lyon": 95.15,
    "vienna": 93.73,
    "berlin": 88.0,
}

# --- Related-work context numbers (Section I) ---------------------------------
#: Average power of a regular (non-corridor) macro cell site.
REGULAR_CELL_SITE_AVG_W = 3200.0
#: Active onboard train relay power for five frequency bands.
ONBOARD_RELAY_POWER_W = 650.0
#: Electrified railway track length in Europe quoted in the introduction [km].
EUROPE_ELECTRIFIED_TRACK_KM = 118_000.0
#: Corresponding yearly energy consumption estimate [TWh].
EUROPE_CORRIDOR_ENERGY_TWH = 1.24
#: Power consumption per km of a 500 m ISD corridor quoted in Section I [W].
CORRIDOR_POWER_PER_KM_QUOTED_W = 1200.0

# --- Sleep transition ---------------------------------------------------------
#: "The transition time between the active state and the sleep mode is assumed
#: to be in the order of a few hundred milliseconds." (Section III-B)
SLEEP_TRANSITION_S = 0.3

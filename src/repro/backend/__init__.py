"""Pluggable array-backend registry for the sequential-scan kernels.

The four batch engines are vectorized over every axis except time/position,
where a sequential recurrence remains (the AR(1) shadowing scan, the battery
state-of-charge clip-recurrence, the occupancy group walk).  Those
recurrences are implemented as *named kernels* (:mod:`repro.kernels`) that
are registered per backend, and this module is the registry:

* ``"numpy"`` — the default: fused pure-numpy formulations (blocked
  rescaled prefix scans, hoisted accumulations) pinned to ``<= 1e-9``
  against the reference in the shared parity matrix;
* ``"reference"`` — the original step-loop formulations, bit-identical to
  the scalar escape hatches (``engine="scalar"`` / ``engine="event"``);
  this is the audit path and the honest baseline of
  ``benchmarks/bench_backend.py``;
* ``"numba"`` — optional JIT kernels behind a guarded import; registered
  always, *available* only when numba is importable (no hard dependency).

Selection is per call: every engine entry point takes a ``backend=``
keyword, ``None`` falls back to the ``REPRO_BACKEND`` environment variable,
and an unset environment falls back to ``"numpy"``.  Resolution happens at
call time, so one process can mix backends and tests can monkeypatch the
environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "Backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend_name",
]

#: Environment variable consulted when no explicit ``backend=`` is passed.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Backend used when neither a ``backend=`` argument nor the environment
#: selects one.
DEFAULT_BACKEND = "numpy"


@dataclass(frozen=True)
class Backend:
    """One registered kernel backend.

    Attributes
    ----------
    name:
        Registry id, the value of ``backend=`` kwargs and ``REPRO_BACKEND``.
    description:
        One-liner shown in error messages and the docs.
    kernels:
        Mapping of kernel name (see :data:`repro.kernels.KERNEL_NAMES`) to
        its implementation.  May be empty for an unavailable backend.
    available:
        Whether the backend can actually run in this process (numba's entry
        is registered even when the import fails, so the error message can
        say *why* it cannot be selected).
    unavailable_reason:
        Human-readable explanation when ``available`` is False.
    """

    name: str
    description: str
    kernels: Mapping[str, Callable]
    available: bool = True
    unavailable_reason: str = ""


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> None:
    """Register a backend under its name.

    Args:
        backend: The backend record; its ``name`` must be unused.

    Raises:
        ConfigurationError: When the name is already registered.
    """
    if backend.name in _REGISTRY:
        raise ConfigurationError(
            f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend


def _ensure_registered() -> None:
    """Trigger kernel registration (kernels register on first import)."""
    if not _REGISTRY:
        import repro.kernels  # noqa: F401  (registers the backends)


def registered_backends() -> tuple[str, ...]:
    """All registered backend names, in registration order.

    Returns:
        The names, whether or not each backend is available in this
        process (see :func:`available_backends` for the usable subset).
    """
    _ensure_registered()
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """The backend names that can actually be selected in this process.

    Returns:
        Registered names whose ``available`` flag is set — the axis the
        parity tests and the optional numba CI leg iterate over.
    """
    _ensure_registered()
    return tuple(name for name, b in _REGISTRY.items() if b.available)


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve an explicit/implicit backend selection to a registered name.

    Resolution order: the explicit ``name`` argument, then the
    ``REPRO_BACKEND`` environment variable, then :data:`DEFAULT_BACKEND`.

    Args:
        name: Explicit selection, or ``None``/empty to consult the
            environment.

    Returns:
        The resolved registered name (the backend may still be
        unavailable; :func:`get_backend` enforces availability).

    Raises:
        ConfigurationError: When the resolved name is not registered.
    """
    _ensure_registered()
    resolved = name or os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    if resolved not in _REGISTRY:
        raise ConfigurationError(
            f"unknown backend {resolved!r}; registered: "
            f"{list(_REGISTRY)} (selected via backend= or "
            f"the {BACKEND_ENV_VAR} environment variable)")
    return resolved


def get_backend(name: str | None = None) -> Backend:
    """The resolved, *available* backend for a kernel call.

    Args:
        name: Explicit selection; ``None`` falls back to ``REPRO_BACKEND``
            and then :data:`DEFAULT_BACKEND`.

    Returns:
        The :class:`Backend` whose kernels should serve the call.

    Raises:
        ConfigurationError: For an unknown name or a registered-but-
            unavailable backend (e.g. ``"numba"`` without numba installed).
    """
    backend = _REGISTRY[resolve_backend_name(name)]
    if not backend.available:
        raise ConfigurationError(
            f"backend {backend.name!r} is unavailable: "
            f"{backend.unavailable_reason or 'no reason recorded'}")
    return backend

"""Optional numba JIT kernels (the ``"numba"`` backend).

numba is *not* a dependency: the import is guarded and the backend is
registered unavailable when it is missing, so selecting it produces a
clear :class:`~repro.errors.ConfigurationError` instead of an
``ImportError``.  When numba is present (the optional CI leg installs it),
these kernels run the exact step-loop recurrences as compiled scalar
loops — the same arithmetic as the reference backend, element by element,
so results match the reference to float-identical ops (pinned ``<= 1e-9``
in the parity matrix alongside the numpy backend).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only on the optional numba CI leg
    from numba import njit

    AVAILABLE = True
except ImportError:
    njit = None
    AVAILABLE = False

__all__ = ["AVAILABLE", "KERNELS"]

if AVAILABLE:  # pragma: no cover - exercised only on the optional numba CI leg

    @njit(cache=True)
    def _ar1_scan_2d(z, rho, innovation, first_scale, out):
        rows, p = z.shape
        for r in range(rows):
            out[r, 0] = first_scale * z[r, 0]
            for i in range(1, p):
                out[r, i] = (rho[i - 1] * out[r, i - 1]
                             + innovation[i - 1] * z[r, i])

    def ar1_scan(z, rho, innovation, first_scale):
        """JIT AR(1) scan; contract of :func:`repro.kernels.reference.ar1_scan`."""
        z = np.ascontiguousarray(np.asarray(z, dtype=float))
        flat = z.reshape(-1, z.shape[-1])
        out = np.empty_like(flat)
        _ar1_scan_2d(flat, np.ascontiguousarray(rho[:z.shape[-1] - 1]),
                     np.ascontiguousarray(innovation[:z.shape[-1] - 1]),
                     float(first_scale), out)
        return out.reshape(z.shape)

    @njit(cache=True)
    def _ar1_min_scan(snr, rho, innovation, z, first_scale, sizes, mins):
        n_cand, _ = snr.shape
        trials = z.shape[0]
        for c in range(n_cand):
            pc = sizes[c]
            for t in range(trials):
                shadow = first_scale * z[t, 0]
                best = snr[c, 0] + shadow
                for i in range(1, pc):
                    shadow = (rho[c, i - 1] * shadow
                              + innovation[c, i - 1] * z[t, i])
                    value = snr[c, i] + shadow
                    if value < best:
                        best = value
                mins[c, t] = best

    def ar1_min_scan(snr, rho, innovation, z, first_scale, sizes):
        """JIT fused min-scan; contract of :func:`repro.kernels.reference.ar1_min_scan`."""
        mins = np.empty((snr.shape[0], z.shape[0]))
        _ar1_min_scan(np.ascontiguousarray(snr), np.ascontiguousarray(rho),
                      np.ascontiguousarray(innovation),
                      np.ascontiguousarray(z), float(first_scale),
                      np.asarray(sizes, dtype=np.int64), mins)
        return mins

    @njit(cache=True)
    def _soc_scan(produced, demanded, months, capacity, efficiency, cutoff,
                  initial_soc, min_soc, full_days, unmet_hours, unmet_wh,
                  annual_pv_wh, annual_load_wh, monthly_pv_wh, monthly_unmet):
        days = produced.shape[0]
        n = produced.shape[2]
        soc = np.full(n, initial_soc)
        full_threshold = 1.0 - 1e-9
        for j in range(n):
            min_soc[j] = soc[j]
        for day in range(days):
            month = months[day]
            for j in range(n):
                became_full = False
                s = soc[j]
                for hour in range(24):
                    prod = produced[day, hour, j]
                    dem = demanded[hour, j]
                    annual_pv_wh[j] += prod
                    annual_load_wh[j] += dem
                    monthly_pv_wh[j, month] += prod

                    deficit = dem - prod
                    usable = max(0.0, (s - cutoff[j]) * capacity[j])
                    delivered = min(deficit, usable)
                    if prod >= dem:
                        absorbable = ((1.0 - s) * capacity[j]) / efficiency[j]
                        taken = min(prod - dem, absorbable)
                        s = min(1.0, s + (taken * efficiency[j]) / capacity[j])
                    else:
                        s = s - delivered / capacity[j]

                    if delivered < deficit - 1e-9:
                        unmet_hours[j] += 1
                        unmet_wh[j] += deficit - delivered
                        monthly_unmet[j, month] += 1
                    if s >= full_threshold:
                        became_full = True
                    if s < min_soc[j]:
                        min_soc[j] = s
                if became_full:
                    full_days[j] += 1
                soc[j] = s

    def soc_scan(produced_w, demanded_w, months, capacity_wh, efficiency,
                 cutoff, initial_soc):
        """JIT SoC walk; contract of :func:`repro.kernels.reference.soc_scan`."""
        n = produced_w.shape[-1]
        out = {
            "min_soc": np.empty(n),
            "full_days": np.zeros(n, dtype=np.int64),
            "unmet_hours": np.zeros(n, dtype=np.int64),
            "unmet_wh": np.zeros(n),
            "annual_pv_wh": np.zeros(n),
            "annual_load_wh": np.zeros(n),
            "monthly_pv_wh": np.zeros((n, 12)),
            "monthly_unmet_hours": np.zeros((n, 12), dtype=np.int64),
        }
        _soc_scan(np.ascontiguousarray(produced_w),
                  np.ascontiguousarray(demanded_w),
                  np.asarray(months, dtype=np.int64),
                  np.ascontiguousarray(capacity_wh),
                  np.ascontiguousarray(efficiency),
                  np.ascontiguousarray(cutoff), float(initial_soc),
                  out["min_soc"], out["full_days"], out["unmet_hours"],
                  out["unmet_wh"], out["annual_pv_wh"],
                  out["annual_load_wh"], out["monthly_pv_wh"],
                  out["monthly_unmet_hours"])
        return out

    @njit(cache=True)
    def _occupancy_scan(g_a, g_b, first_wake_after, n_groups, transition_s,
                        horizon_s, awake_time, waking_occ):
        lanes = g_a.shape[0]
        for lane in range(lanes):
            asleep = True
            alpha = 0.0
            finish = 0.0
            awake = 0.0
            waking = 0.0
            for k in range(n_groups[lane]):
                ga = g_a[lane, k]
                gb = g_b[lane, k]
                if asleep:
                    alpha = min(first_wake_after[lane, k], ga)
                    finish = alpha + transition_s
                    asleep = False
                waking += max(0.0, min(gb, finish) - ga)
                if gb > finish:
                    awake += gb - alpha
                    asleep = True
            if not asleep:
                awake += horizon_s - alpha
            else:
                tail = first_wake_after[lane, n_groups[lane]]
                if tail < horizon_s:
                    awake += horizon_s - tail
            awake_time[lane] = awake
            waking_occ[lane] = waking

    def occupancy_scan(g_a, g_b, first_wake_after, n_groups, transition_s,
                       horizon_s):
        """JIT group walk; contract of :func:`repro.kernels.reference.occupancy_scan`."""
        lanes = g_a.shape[0]
        awake_time = np.zeros(lanes)
        waking_occ = np.zeros(lanes)
        _occupancy_scan(np.ascontiguousarray(g_a), np.ascontiguousarray(g_b),
                        np.ascontiguousarray(first_wake_after),
                        np.asarray(n_groups, dtype=np.int64),
                        float(transition_s), float(horizon_s), awake_time,
                        waking_occ)
        return awake_time, waking_occ

    KERNELS = {
        "ar1_scan": ar1_scan,
        "ar1_min_scan": ar1_min_scan,
        "soc_scan": soc_scan,
        "occupancy_scan": occupancy_scan,
    }
else:
    #: Empty when numba is missing; the backend registers as unavailable.
    KERNELS = {}

"""Named sequential-scan kernels, registered per array backend.

Each kernel is one of the recurrences the batch engines cannot vectorize
away — the only remaining sequential loops in the codebase:

* :func:`ar1_scan` — the AR(1) linear recurrence (shadowing traces,
  daily-clearness series);
* :func:`ar1_min_scan` — AR(1) shadow recurrence fused with the running
  SNR minimum (the Monte-Carlo engine's inner loop);
* :func:`soc_scan` — the battery state-of-charge clip-recurrence with its
  energy accounting (the solar engine's hourly walk);
* :func:`occupancy_scan` — the occupancy-group wake-cycle walk (the sim
  engine's group scan).

Importing this module registers the three backends with
:mod:`repro.backend`: ``"numpy"`` (fused formulations, the default),
``"reference"`` (the original step loops, bit-identity anchor) and
``"numba"`` (optional JIT; registered unavailable when numba is missing).
Every dispatcher takes a ``backend=`` keyword resolved per call via
:func:`repro.backend.get_backend` (explicit argument, then the
``REPRO_BACKEND`` environment variable, then ``"numpy"``).
"""

from __future__ import annotations

import numpy as np

from repro.backend import Backend, get_backend, register_backend
from repro.kernels import numba_jit as _numba
from repro.kernels import numpy_fused as _numpy
from repro.kernels import reference as _reference

__all__ = ["KERNEL_NAMES", "ar1_scan", "ar1_min_scan", "soc_scan",
           "occupancy_scan"]

#: The kernel names every available backend must provide.
KERNEL_NAMES = ("ar1_scan", "ar1_min_scan", "soc_scan", "occupancy_scan")

register_backend(Backend(
    name="numpy",
    description="fused pure-numpy kernels (blocked prefix scans, hoisted "
                "accounting) — the default",
    kernels=_numpy.KERNELS,
))
register_backend(Backend(
    name="reference",
    description="original step-loop kernels — the bit-identity anchor and "
                "benchmark baseline",
    kernels=_reference.KERNELS,
))
register_backend(Backend(
    name="numba",
    description="JIT-compiled step loops (optional dependency)",
    kernels=_numba.KERNELS,
    available=_numba.AVAILABLE,
    unavailable_reason="numba is not installed (optional dependency; "
                       "`pip install numba` enables this backend)",
))


def ar1_scan(z: np.ndarray, rho: np.ndarray, innovation: np.ndarray,
             first_scale: float, backend: str | None = None) -> np.ndarray:
    """AR(1) recurrence ``out[i] = rho[i-1]*out[i-1] + innovation[i-1]*z[i]``
    over the last axis, with ``out[0] = first_scale * z[0]``.

    Args:
        z: Driving standard normals, shape ``(..., p)``.
        rho: Per-step AR coefficients, length ``>= p - 1``.
        innovation: Per-step innovation scales, length ``>= p - 1``.
        first_scale: Scale applied to the first sample.
        backend: Backend name; ``None`` resolves via ``REPRO_BACKEND`` and
            then the ``"numpy"`` default.

    Returns:
        The scanned series, same shape as ``z``.
    """
    return get_backend(backend).kernels["ar1_scan"](
        z, rho, innovation, first_scale)


def ar1_min_scan(snr: np.ndarray, rho: np.ndarray, innovation: np.ndarray,
                 z: np.ndarray, first_scale: float, sizes: np.ndarray,
                 backend: str | None = None) -> np.ndarray:
    """AR(1) shadow recurrence fused with a running minimum of
    ``snr + shadow`` — the ``[cand, trial, pos]`` tensor is never
    materialized.

    Args:
        snr: Deterministic SNR, shape ``(n_cand, p_max)``, +inf padded
            past each candidate's grid end.
        rho: AR coefficients, shape ``(n_cand, max(p_max - 1, 1))``,
            zero-padded.
        innovation: Innovation scales, same shape/padding as ``rho``.
        z: Shared standard normals, shape ``(trials, p_max)``.
        first_scale: Stationary sigma scaling the first position.
        sizes: True per-candidate position counts, shape ``(n_cand,)``.
        backend: Backend name; ``None`` resolves via ``REPRO_BACKEND``.

    Returns:
        Minimum shadowed SNR per (candidate, trial), shape
        ``(n_cand, trials)``.
    """
    return get_backend(backend).kernels["ar1_min_scan"](
        snr, rho, innovation, z, first_scale, sizes)


def soc_scan(produced_w: np.ndarray, demanded_w: np.ndarray,
             months: np.ndarray, capacity_wh: np.ndarray,
             efficiency: np.ndarray, cutoff: np.ndarray, initial_soc: float,
             backend: str | None = None) -> dict:
    """Battery state-of-charge clip-recurrence over an hourly horizon,
    with the full energy accounting of the solar engine.

    Args:
        produced_w: PV power, shape ``(days, 24, n)``.
        demanded_w: Load power, shape ``(24, n)``.
        months: Month index (0..11) per day, shape ``(days,)``.
        capacity_wh: Battery capacity per system, shape ``(n,)``.
        efficiency: Charge efficiency per system, shape ``(n,)``.
        cutoff: Discharge cutoff SoC per system, shape ``(n,)``.
        initial_soc: State of charge before the first hour, in [0, 1].
        backend: Backend name; ``None`` resolves via ``REPRO_BACKEND``.

    Returns:
        Dict of accounting arrays — ``min_soc``, ``full_days``,
        ``unmet_hours``, ``unmet_wh``, ``annual_pv_wh``, ``annual_load_wh``
        (``(n,)``), ``monthly_pv_wh``, ``monthly_unmet_hours`` (``(n, 12)``).
    """
    return get_backend(backend).kernels["soc_scan"](
        produced_w, demanded_w, months, capacity_wh, efficiency, cutoff,
        initial_soc)


def occupancy_scan(g_a: np.ndarray, g_b: np.ndarray,
                   first_wake_after: np.ndarray, n_groups: np.ndarray,
                   transition_s: float, horizon_s: float,
                   backend: str | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Wake-cycle walk over per-lane occupancy groups (the sim engine's
    sequential scan).

    Args:
        g_a: Group start instants, shape ``(lanes, n_runs)``, +inf padded.
        g_b: Group end instants, same shape/padding.
        first_wake_after: First barrier wake strictly after each query,
            shape ``(lanes, n_runs + 1)``.
        n_groups: Per-lane group counts, shape ``(lanes,)``.
        transition_s: Sleep-to-awake transition seconds.
        horizon_s: Simulation horizon seconds.

        backend: Backend name; ``None`` resolves via ``REPRO_BACKEND``.

    Returns:
        ``(awake_time, waking_occ)`` per lane, both ``(lanes,)``.
    """
    return get_backend(backend).kernels["occupancy_scan"](
        g_a, g_b, first_wake_after, n_groups, transition_s, horizon_s)

"""Fused pure-numpy kernels (the default ``"numpy"`` backend).

Three genuinely different formulations, not relabels of the step loops:

* :func:`ar1_scan` — a blocked *rescaled prefix scan*: within a chunk the
  recurrence ``y[i] = rho[i] y[i-1] + inn[i] z[i]`` telescopes to
  ``y[s+j] = (head + cumsum(w * z)[j]) * Q[j]`` with ``Q[j] = prod rho``
  and ``w = inn / Q``, so the Python loop shrinks from ``p`` steps to a
  handful of chunk steps of elementwise + cumsum work.  Chunks are cut
  greedily left-to-right (when the prefix product would underflow the
  rescaling floor, at a zero coefficient, or at the 8192-position cap),
  which makes the whole scan *prefix-stable*: position ``i``'s output
  depends only on coefficients/draws ``<= i``, bitwise — scanning a prefix
  of the grid equals the prefix of the scan.  That property is what keeps
  common-random-number candidate independence exact in
  :func:`ar1_min_scan`.
* :func:`ar1_min_scan` — candidates whose coefficient vectors share a
  prefix (every uniform ladder at one resolution) share **one** scan; the
  per-candidate minimum prunes columns through an exact probe bound, then
  reduces only the surviving contiguous spans (sound pruning — exact, not
  approximate).
* :func:`soc_scan` — single flattened hour-major walk *in SoC units*:
  normalizing the hourly deficit by capacity and scaling the surplus by
  ``efficiency / capacity`` once (full-tensor passes) collapses the
  per-hour update to ``soc' = soc - min(dd, max(0, soc - cutoff))`` on
  discharge and ``soc' = min(1, soc + min(ss, 1 - soc))`` on charge —
  four to nine elementwise ops per hour vs. ~30 in the reference walk,
  with each hour executing only the branch it needs.  Every non-recurrent
  accumulation is hoisted out of the loop; PV sums replay the reference
  summation order bitwise (``_hour_order_sum``), the SoC-dependent outputs
  agree to a few ULPs — inside the 1e-9 parity budget.

``occupancy_scan`` is re-exported from the reference backend unchanged:
its lane axis is already fully batched and the group loop is a handful of
iterations — the numba backend is where a JIT win exists for it.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.reference import occupancy_scan

__all__ = ["ar1_scan", "ar1_min_scan", "soc_scan", "occupancy_scan",
           "KERNELS"]

#: Chunk-length cap of the blocked scan.  The rescaling floor below is
#: what actually bounds chunk length (underflow forces an early cut); the
#: cap only limits how far past a cut the speculative ``cumprod`` may run,
#: so it is set high enough that realistic grids scan in one chunk.
_BLOCK = 8192

#: Column stride of the pruning probe: each candidate's per-trial upper
#: bound is the minimum over every 16th shadowed column — cheap, and tight
#: enough to prune most of the grid before the full reduction.
_PROBE_STRIDE = 16

#: Surviving columns closer than this are merged into one contiguous span
#: before the full reduction: a dominated column inside a span is harmless
#: (it can never win), and contiguous slices beat a fancy-index gather.
_SPAN_GAP = 64

#: Prefix products below this trigger an early chunk cut: the rescaled
#: weights ``inn / Q`` would otherwise overflow toward 1e308.  Cutting is
#: always safe (a chunk of length 1 degenerates to the plain recurrence).
_Q_FLOOR = 1e-250


def ar1_scan(z: np.ndarray, rho: np.ndarray, innovation: np.ndarray,
             first_scale: float) -> np.ndarray:
    """Blocked rescaled-prefix AR(1) scan over the last axis.

    Same contract as the reference kernel (see
    :func:`repro.kernels.reference.ar1_scan`); rounding introduced at step
    ``i`` decays into step ``j`` by ``rho^(j-i)``, so the output matches
    the reference to ``~eps * min(p, 1/(1-rho))`` absolute — well inside
    the 1e-9 parity pin — and is bitwise prefix-stable in ``p``.

    Args:
        z: Standard normals, shape ``(..., p)``.
        rho: Per-step AR coefficients, length ``>= p - 1``.
        innovation: Per-step innovation scales, length ``>= p - 1``.
        first_scale: Scale of the first sample.

    Returns:
        The recurrence output, same shape as ``z``.
    """
    z = np.asarray(z, dtype=float)
    p = z.shape[-1]
    out = np.empty_like(z)
    # Uniform step treatment: a virtual coefficient 0 and innovation
    # ``first_scale`` ahead of position 0 turn the seed into a regular step.
    rho_eff = np.empty(p)
    rho_eff[0] = 0.0
    rho_eff[1:] = rho[:p - 1]
    inn_eff = np.empty(p)
    inn_eff[0] = first_scale
    inn_eff[1:] = innovation[:p - 1]

    carry = np.zeros(z.shape[:-1] + (1,))
    s = 0
    while s < p:
        stop = min(s + _BLOCK, p)
        r = rho_eff[s + 1:stop]
        qp = np.cumprod(r)
        bad = np.flatnonzero(np.abs(qp) < _Q_FLOOR)
        if bad.size:
            # Greedy early cut at the first underflow/zero coefficient —
            # decisions depend only on the coefficient prefix, so chunk
            # boundaries (and therefore outputs) are prefix-stable.
            e = s + 1 + int(bad[0])
            qp = qp[:int(bad[0])]
        else:
            e = stop
        q = np.empty(e - s)
        q[0] = 1.0
        q[1:] = qp
        w = inn_eff[s:e] / q
        seg = out[..., s:e]
        head = rho_eff[s] * carry      # exactly 0 at s=0 and after a zero rho
        np.multiply(z[..., s:e], w, out=seg)
        # Seeding the head into the first column lets the cumsum carry it
        # across the chunk — one full elementwise pass fewer than adding it
        # to every column afterwards.
        np.add(seg[..., :1], head, out=seg[..., :1])
        np.cumsum(seg, axis=-1, out=seg)
        np.multiply(seg, q, out=seg)
        carry = out[..., e - 1:e]
        s = e
    return out


def ar1_min_scan(snr: np.ndarray, rho: np.ndarray, innovation: np.ndarray,
                 z: np.ndarray, first_scale: float,
                 sizes: np.ndarray) -> np.ndarray:
    """Grouped blocked scan + pruned minimum over shadowed SNR columns.

    Candidates are grouped by shared coefficient prefix (after sorting by
    grid size, a candidate joins a group when its coefficients equal the
    leader's over its own length); each group runs **one** blocked scan of
    the shared normal draws — prefix stability makes the first ``p_c``
    columns bitwise equal to the scan the candidate would run alone, so
    common-random-number independence across candidates is preserved
    exactly.  The per-candidate minimum then visits only columns that can
    possibly win: a strided probe of columns yields an exact per-trial
    upper bound ``u_t`` on the final minimum, and with ``T = max_t u_t``
    any column whose best case ``snr[i] + col_min[i]`` exceeds ``T`` loses
    in every trial — while each trial's argmin column survives the cut
    (its value is ``<= u_t <= T``), so pruning is exact, not approximate.
    Surviving columns are merged into contiguous spans and reduced span by
    span through one reused cache-resident buffer.

    Args / Returns: see :func:`repro.kernels.reference.ar1_min_scan`.
    """
    n_cand = snr.shape[0]
    trials = z.shape[0]
    sizes = np.asarray(sizes, dtype=np.intp)
    mins = np.empty((n_cand, trials))

    # Group by coefficient prefix, longest grids first so group leaders
    # cover their members.
    order = np.argsort(-sizes, kind="stable")
    groups: list[list[int]] = []
    for c in map(int, order):
        pc = int(sizes[c])
        for g in groups:
            lead = g[0]
            if (np.array_equal(rho[c, :pc - 1], rho[lead, :pc - 1])
                    and np.array_equal(innovation[c, :pc - 1],
                                       innovation[lead, :pc - 1])):
                g.append(c)
                break
        else:
            groups.append([c])

    for g in groups:
        lead = g[0]
        pl = int(sizes[lead])
        scan = ar1_scan(z[:, :pl], rho[lead], innovation[lead], first_scale)
        col_min = scan.min(axis=0)
        # Position-major copy: the span reduction then runs its minimum
        # down contiguous trial lanes (one vectorized ``minimum`` per
        # position) instead of paying a per-trial inner-loop setup on
        # every short row.  Values are identical floats, so pruning
        # decisions and minima are unchanged by the layout.  The
        # trial-major original is dropped immediately to keep the live
        # footprint at one scan-sized array.
        scan_t = np.ascontiguousarray(scan.T)
        del scan
        # One contiguous copy of every _PROBE_STRIDE-th position: the
        # per-candidate probe then runs on dense memory instead of paying
        # the strided access once per candidate.
        probe_scan = np.ascontiguousarray(scan_t[::_PROBE_STRIDE])
        # Exact pruning, two bounds deep: the strided probe's per-trial
        # minimum u is a true upper bound on each trial's final minimum,
        # so any column whose best case row + col_min exceeds T = max(u)
        # can never achieve any trial's minimum — and each trial's argmin
        # column survives the cut (its value is <= u_t <= T).  Dropping
        # pruned columns therefore leaves every reduced minimum unchanged.
        plans = []
        widest = 1
        pbuf = np.empty((probe_scan.shape[0], trials))
        cbuf = np.empty(pl)
        for c in g:
            pc = int(sizes[c])
            row = snr[c, :pc]
            k = -(-pc // _PROBE_STRIDE)   # probe columns 16*i < pc
            np.add(probe_scan[:k], row[::_PROBE_STRIDE, None],
                   out=pbuf[:k])
            # u is itself an exact minimum over probe columns, so reducing
            # it straight into the output row seeds the span reduction;
            # every argmin column is inside some span.
            u = mins[c]
            np.minimum.reduce(pbuf[:k], axis=0, out=u)
            np.add(row, col_min[:pc], out=cbuf[:pc])
            keep = np.flatnonzero(cbuf[:pc] <= u.max())
            # Merge survivors into contiguous spans; dominated columns
            # swallowed by a span are harmless (they never win).
            cuts = np.flatnonzero(np.diff(keep) > _SPAN_GAP)
            starts = np.concatenate(([keep[0]], keep[cuts + 1]))
            ends = np.concatenate((keep[cuts], [keep[-1]])) + 1
            plans.append((c, row, starts, ends))
            widest = max(widest, int((ends - starts).max()))
        buf = np.empty((widest, trials))
        for c, row, starts, ends in plans:
            for lo, hi in zip(starts, ends):
                part = np.add(scan_t[lo:hi], row[lo:hi, None],
                              out=buf[:hi - lo])
                np.minimum(mins[c], part.min(axis=0), out=mins[c])
    return mins


def _hour_order_sum(hourly: np.ndarray) -> np.ndarray:
    """Float sum over the hour axis, bitwise-identical to a ``+=`` loop.

    numpy's axis-0 reduction over a C-ordered 2-D array accumulates row by
    row (vectorized over the lanes) when there is more than one lane —
    exactly the reference loop's association.  The single-lane case falls
    back to pairwise summation inside numpy, so it is routed through
    ``np.add.at``, which is documented to apply updates one by one.
    """
    if hourly.shape[1] > 1:
        return np.sum(hourly, axis=0)
    out = np.zeros(hourly.shape[1])
    np.add.at(out, np.zeros(hourly.shape[0], dtype=np.intp), hourly[:, 0])
    return out


def _monthly_sums(hourly: np.ndarray, months: np.ndarray) -> np.ndarray:
    """Per-month hour-order float sums, shape ``(12, n)``.

    When every month forms a single contiguous day-run (any 365-day
    horizon, e.g. the Oct-1 default) each month's sum is one
    :func:`_hour_order_sum` over its slice — bitwise the reference
    accumulation.  Split months (wrapped starts, multi-year horizons) fall
    back to ``np.add.at``'s one-by-one updates, which replay the reference
    order exactly.
    """
    out = np.zeros((12, hourly.shape[1]))
    run_starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(months) != 0) + 1))
    run_months = months[run_starts]
    if hourly.shape[1] > 1 and len(set(run_months.tolist())) == run_starts.size:
        run_ends = np.concatenate((run_starts[1:], [months.size]))
        for m, a, b in zip(run_months, run_starts, run_ends):
            out[int(m)] = np.sum(hourly[a * 24:b * 24], axis=0)
    else:
        np.add.at(out, np.repeat(months, 24), hourly)
    return out


def soc_scan(produced_w: np.ndarray, demanded_w: np.ndarray,
             months: np.ndarray, capacity_wh: np.ndarray,
             efficiency: np.ndarray, cutoff: np.ndarray,
             initial_soc: float) -> dict:
    """Flattened hour-major SoC walk in SoC units, with hoisted accounting.

    The recurrence runs in state-of-charge units: with
    ``dd = (demanded - produced) / capacity`` and
    ``ss = (produced - demanded) * efficiency / capacity`` precomputed as
    full-tensor passes, each hour reduces to

    * pure discharge — ``delivered = min(dd, max(0, soc - cutoff))``,
      ``soc' = soc - delivered`` (4 ops);
    * pure charge — ``soc' = min(1, soc + min(ss, 1 - soc))``, delivered
      is the (non-positive) deficit (5 ops);
    * mixed — both branches merged through the charging mask (9 ops).

    All accounting is reconstructed after the loop: the PV/load/monthly
    sums are bitwise the reference accumulation (hour-order summation over
    untouched inputs, see :func:`_hour_order_sum`); the SoC-dependent
    outputs (min SoC, full days, unmet accounting) differ from the
    reference walk only by elementwise rounding — a few ULPs, far inside
    the 1e-9 backend parity budget.  The ``"reference"`` backend is the
    bitwise anchor.

    Args / Returns: see :func:`repro.kernels.reference.soc_scan`.
    """
    days = produced_w.shape[0]
    n = produced_w.shape[-1]
    hours = days * 24
    produced = produced_w.reshape(hours, n)

    charging = (produced_w >= demanded_w[None]).reshape(hours, n)
    any_charge = charging.any(axis=1).tolist()
    all_charge = charging.all(axis=1).tolist()
    # Hourly deficit and efficiency-scaled surplus, in SoC units.  The
    # surplus is derived from the deficit tensor (exact sign flip) before
    # the in-place normalization reuses it.
    dd = (demanded_w[None] - produced_w).reshape(hours, n)
    ss = dd * (-(efficiency / capacity_wh))
    dd /= capacity_wh

    socs = np.empty((hours, n))
    delivered = np.empty((hours, n))      # in SoC units
    soc = np.full(n, float(initial_soc))
    b1 = np.empty(n)
    b2 = np.empty(n)
    # Pre-sliced row views: list indexing is several times cheaper than
    # ndarray row indexing inside the 8760-iteration loop.
    soc_rows = list(socs)
    d_rows = list(delivered)
    dd_rows = list(dd)
    ss_rows = list(ss)
    ch_rows = list(charging)
    for h in range(hours):
        soc_row = soc_rows[h]
        d_row = d_rows[h]
        if not any_charge[h]:
            # Pure discharge: soc' = soc - min(dd, max(0, soc - cutoff)).
            np.subtract(soc, cutoff, out=b2)
            np.maximum(0.0, b2, out=b2)                 # usable
            np.minimum(dd_rows[h], b2, out=d_row)       # delivered
            np.subtract(soc, d_row, out=soc_row)
        elif all_charge[h]:
            # Pure charge: delivered == deficit (<= 0) exactly.
            np.subtract(1.0, soc, out=b1)
            np.minimum(ss_rows[h], b1, out=b1)          # taken
            np.add(soc, b1, out=b1)
            np.minimum(1.0, b1, out=soc_row)
            np.copyto(d_row, dd_rows[h])
        else:
            # Mixed hour: both branches, merged like the reference.  On
            # charging lanes dd <= 0 <= usable, so the delivered row is
            # automatically the charge-branch deficit — no fixup needed.
            np.subtract(1.0, soc, out=b1)
            np.minimum(ss_rows[h], b1, out=b1)
            np.add(soc, b1, out=b1)
            np.minimum(1.0, b1, out=b1)                 # soc_charged
            np.subtract(soc, cutoff, out=b2)
            np.maximum(0.0, b2, out=b2)
            np.minimum(dd_rows[h], b2, out=d_row)
            np.subtract(soc, d_row, out=soc_row)        # soc_discharged
            np.copyto(soc_row, b1, where=ch_rows[h])
        soc = soc_row

    # Shortfall (SoC units) and the unmet flag.  Scaling the reference's
    # 1e-9 Wh threshold by capacity keeps the decision aligned up to one
    # rounding of the knife edge; masking by multiplication is exact
    # (True -> x * 1.0, False -> 0.0).
    np.subtract(dd, delivered, out=dd)                  # shortfall
    unmet = dd > (1e-9 / capacity_wh)
    np.multiply(dd, unmet, out=dd)
    # Integer counts are exact under any summation order, so each month-run
    # collapses to one vectorized bool sum.
    monthly_unmet = np.zeros((12, n), dtype=int)
    run_starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(months) != 0) + 1))
    run_ends = np.concatenate((run_starts[1:], [months.size]))
    for a, b in zip(run_starts, run_ends):
        monthly_unmet[int(months[a])] += unmet[a * 24:b * 24].sum(axis=0)
    full = (socs.reshape(days, 24, n) >= 1.0 - 1e-9).any(axis=1)

    return {
        "min_soc": np.minimum(np.full(n, float(initial_soc)),
                              socs.min(axis=0)),
        "full_days": full.sum(axis=0),
        "unmet_hours": unmet.sum(axis=0),
        "unmet_wh": _hour_order_sum(dd) * capacity_wh,
        "annual_pv_wh": _hour_order_sum(produced),
        # The demand tile repeats one 24-row block, so its sequential sum
        # collapses to a closed form (equal to the reference accumulation
        # to ~1e-13 relative).
        "annual_load_wh": demanded_w.sum(axis=0) * float(days),
        "monthly_pv_wh": np.ascontiguousarray(
            _monthly_sums(produced, months).T),
        "monthly_unmet_hours": np.ascontiguousarray(monthly_unmet.T),
    }


#: Kernel table registered for the ``"numpy"`` backend.
KERNELS = {
    "ar1_scan": ar1_scan,
    "ar1_min_scan": ar1_min_scan,
    "soc_scan": soc_scan,
    "occupancy_scan": occupancy_scan,
}

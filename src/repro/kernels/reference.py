"""Step-loop reference kernels (the ``"reference"`` backend).

These are the engines' original sequential loops, moved verbatim so that
every backend implements the same named kernels.  They advance one
time/position step per Python iteration and are the bit-identity anchor:
the scalar escape hatches (``engine="scalar"`` / per-system
``simulate_year`` / ``engine="event"``) are pinned equal to *these* in the
parity matrix, and the fused numpy / numba kernels are pinned to them in
turn (bit-identical where documented, ``<= 1e-9`` otherwise).  They are
also the honest baseline measured by ``benchmarks/bench_backend.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ar1_scan", "ar1_min_scan", "soc_scan", "occupancy_scan",
           "KERNELS"]


def ar1_scan(z: np.ndarray, rho: np.ndarray, innovation: np.ndarray,
             first_scale: float) -> np.ndarray:
    """AR(1) linear recurrence over the last axis, one step per iteration.

    Computes ``out[..., 0] = first_scale * z[..., 0]`` and
    ``out[..., i] = rho[i-1] * out[..., i-1] + innovation[i-1] * z[..., i]``
    — exactly the loop that lived in
    :meth:`repro.propagation.fading.LogNormalShadowing.sample_batch` and in
    :meth:`repro.solar.irradiance.SyntheticWeather.daily_clearness`.

    Args:
        z: Standard normals, shape ``(..., p)``; any batch shape (the
            shadowing engine passes ``[trial, position]``, the weather
            synthesizer a 1-D day series).
        rho: Per-step AR coefficients, length ``>= p - 1``.
        innovation: Per-step innovation scales, length ``>= p - 1``.
        first_scale: Scale of the first sample (the stationary sigma, or
            the innovation scale for a zero-initialized series).

    Returns:
        The recurrence output, same shape as ``z``.
    """
    z = np.asarray(z, dtype=float)
    out = np.empty_like(z)
    out[..., 0] = first_scale * z[..., 0]
    for i in range(1, z.shape[-1]):
        out[..., i] = rho[i - 1] * out[..., i - 1] + innovation[i - 1] * z[..., i]
    return out


def ar1_min_scan(snr: np.ndarray, rho: np.ndarray, innovation: np.ndarray,
                 z: np.ndarray, first_scale: float,
                 sizes: np.ndarray) -> np.ndarray:
    """Fused AR(1) shadow recurrence + running SNR minimum, step-loop form.

    The Monte-Carlo engine's inner loop, verbatim: advance a
    ``[candidate, trial]`` shadow state one position at a time and fold the
    shadowed SNR into a running minimum, so ``[cand, trial, pos]`` is never
    materialized.  Padding conventions (``snr`` +inf, coefficients zero past
    a candidate's grid) make ``sizes`` redundant here; fused backends use it
    to skip padded columns.

    Args:
        snr: Deterministic SNR, shape ``(n_cand, p_max)``, +inf padded.
        rho: AR coefficients, shape ``(n_cand, max(p_max - 1, 1))``,
            zero-padded past each candidate's grid end.
        innovation: Innovation scales, same shape/padding as ``rho``.
        z: Shared standard normals, shape ``(trials, p_max)``.
        first_scale: Stationary sigma scaling the first position's draw.
        sizes: Per-candidate true position counts, shape ``(n_cand,)``.

    Returns:
        Per-(candidate, trial) minimum shadowed SNR, shape
        ``(n_cand, trials)``.
    """
    shadow = np.empty((snr.shape[0], z.shape[0]))
    shadow[:] = first_scale * z[:, 0]
    mins = snr[:, :1] + shadow
    for i in range(1, snr.shape[1]):
        shadow = rho[:, i - 1:i] * shadow + innovation[:, i - 1:i] * z[:, i]
        np.minimum(mins, snr[:, i:i + 1] + shadow, out=mins)
    return mins


def soc_scan(produced_w: np.ndarray, demanded_w: np.ndarray,
             months: np.ndarray, capacity_wh: np.ndarray,
             efficiency: np.ndarray, cutoff: np.ndarray,
             initial_soc: float) -> dict:
    """Battery state-of-charge clip-recurrence, nested day/hour step loop.

    The original :func:`repro.solar.batch.simulate_systems` hourly energy
    balance, verbatim: both branches of the scalar if/else merged
    element-wise, every accumulator advanced inside the loop.

    Args:
        produced_w: PV power, shape ``(days, 24, n)``.
        demanded_w: Load power, shape ``(24, n)`` (same every day).
        months: Month index (0..11) per day, shape ``(days,)``.
        capacity_wh: Battery capacity per system, shape ``(n,)``.
        efficiency: Charge efficiency per system, shape ``(n,)``.
        cutoff: Discharge cutoff SoC per system, shape ``(n,)``.
        initial_soc: State of charge before the first hour, in [0, 1].

    Returns:
        Dict of per-system accounting arrays: ``min_soc``, ``full_days``,
        ``unmet_hours``, ``unmet_wh``, ``annual_pv_wh``, ``annual_load_wh``
        (all ``(n,)``) and ``monthly_pv_wh``, ``monthly_unmet_hours``
        (``(n, 12)``).
    """
    days = produced_w.shape[0]
    n = produced_w.shape[-1]
    capacity = capacity_wh
    full_threshold = 1.0 - 1e-9

    soc = np.full(n, float(initial_soc))
    min_soc = soc.copy()
    full_days = np.zeros(n, dtype=int)
    unmet_hours = np.zeros(n, dtype=int)
    unmet_wh = np.zeros(n)
    annual_pv_wh = np.zeros(n)
    annual_load_wh = np.zeros(n)
    monthly_pv_wh = np.zeros((n, 12))
    monthly_unmet = np.zeros((n, 12), dtype=int)

    for day in range(days):
        month = int(months[day])
        became_full = np.zeros(n, dtype=bool)
        day_power = produced_w[day]
        for hour in range(24):
            produced = day_power[hour]
            demanded = demanded_w[hour]
            annual_pv_wh += produced
            annual_load_wh += demanded
            monthly_pv_wh[:, month] += produced

            # Both branches of the scalar if/else, merged element-wise.
            charging = produced >= demanded
            surplus = produced - demanded
            absorbable_in = ((1.0 - soc) * capacity) / efficiency
            taken = np.minimum(surplus, absorbable_in)
            soc_charged = np.minimum(1.0, soc + (taken * efficiency) / capacity)

            deficit = demanded - produced
            usable = np.maximum(0.0, (soc - cutoff) * capacity)
            delivered = np.minimum(deficit, usable)
            soc_discharged = soc - delivered / capacity

            soc = np.where(charging, soc_charged, soc_discharged)

            # On the charge branch delivered == deficit, so the unmet test is
            # automatically false there — no extra masking needed.
            unmet = delivered < deficit - 1e-9
            unmet_hours += unmet
            unmet_wh += np.where(unmet, deficit - delivered, 0.0)
            monthly_unmet[:, month] += unmet

            became_full |= soc >= full_threshold
            np.minimum(min_soc, soc, out=min_soc)
        full_days += became_full

    return {
        "min_soc": min_soc,
        "full_days": full_days,
        "unmet_hours": unmet_hours,
        "unmet_wh": unmet_wh,
        "annual_pv_wh": annual_pv_wh,
        "annual_load_wh": annual_load_wh,
        "monthly_pv_wh": monthly_pv_wh,
        "monthly_unmet_hours": monthly_unmet,
    }


def occupancy_scan(g_a: np.ndarray, g_b: np.ndarray,
                   first_wake_after: np.ndarray, n_groups: np.ndarray,
                   transition_s: float,
                   horizon_s: float) -> tuple[np.ndarray, np.ndarray]:
    """Sequential scan over occupancy groups, one group column per step.

    The sim engine's only loop, verbatim from
    :func:`repro.simulation.batch._simulate_batch`: track the open wake
    cycle per lane.  A cycle opens at min(next wake, group start), finishes
    waking ``transition_s`` later, and closes at the first group end
    strictly after the finish (the unit stays awake through group ends that
    land inside the transition — the event engine's "missed sleep" case).

    Args:
        g_a: Occupancy group starts, shape ``(lanes, n_runs)``, +inf padded.
        g_b: Occupancy group ends, same shape/padding.
        first_wake_after: First barrier wake strictly after each query
            instant, shape ``(lanes, n_runs + 1)`` (sentinel column first).
        n_groups: Per-lane group counts, shape ``(lanes,)``.
        transition_s: Sleep-to-awake transition time in seconds.
        horizon_s: Simulation horizon in seconds.

    Returns:
        ``(awake_time, waking_occ)`` per lane, both shape ``(lanes,)``:
        total awake seconds and occupancy seconds spent inside wake
        transitions.
    """
    lanes = g_a.shape[0]
    asleep = np.ones(lanes, dtype=bool)
    alpha = np.zeros(lanes)
    finish = np.zeros(lanes)
    awake_time = np.zeros(lanes)
    waking_occ = np.zeros(lanes)
    for k in range(int(n_groups.max()) if n_groups.size else 0):
        ga, gb = g_a[:, k], g_b[:, k]
        active = ga < np.inf
        starting = active & asleep
        alpha = np.where(starting, np.minimum(first_wake_after[:, k], ga), alpha)
        finish = np.where(starting, alpha + transition_s, finish)
        asleep &= ~starting
        waking_occ += np.where(
            active, np.maximum(0.0, np.minimum(gb, finish) - ga), 0.0)
        sleeps = active & (gb > finish)
        awake_time += np.where(sleeps, gb - alpha, 0.0)
        asleep |= sleeps
    awake_time += np.where(~asleep, horizon_s - alpha, 0.0)
    # Tail: a barrier may fire after the last sleep for a run whose section
    # entry lies beyond the horizon — the unit wakes and idles until the end.
    tail_wake = np.take_along_axis(first_wake_after, n_groups[:, None], axis=1)[:, 0]
    awake_time += np.where(asleep & (tail_wake < horizon_s),
                           horizon_s - tail_wake, 0.0)
    return awake_time, waking_occ


#: Kernel table registered for the ``"reference"`` backend.
KERNELS = {
    "ar1_scan": ar1_scan,
    "ar1_min_scan": ar1_min_scan,
    "soc_scan": soc_scan,
    "occupancy_scan": occupancy_scan,
}

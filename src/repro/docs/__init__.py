"""Built-from-source documentation tooling.

Three pieces, all dependency-light (PyYAML + stdlib):

* :mod:`repro.docs.md` — the Markdown renderer (GitHub-flavoured subset);
* :mod:`repro.docs.apigen` — API reference pages generated from live
  docstrings, with a drift check;
* :mod:`repro.docs.site` — the site builder + strict nav/link/anchor
  validation over the same ``mkdocs.yml`` + ``docs/`` tree that real MkDocs
  consumes in CI.

CLI: ``repro docs build [--strict] [--output DIR]`` and
``repro docs api [--check]``.
"""

from repro.docs.apigen import API_PAGES, check, generate, render_page
from repro.docs.md import render, slugify
from repro.docs.site import BuildReport, build_site, load_config

__all__ = [
    "API_PAGES",
    "check",
    "generate",
    "render_page",
    "render",
    "slugify",
    "BuildReport",
    "build_site",
    "load_config",
]

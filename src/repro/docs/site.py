"""Built-from-source documentation site builder with strict checks.

Reads the same ``mkdocs.yml`` + ``docs/`` tree that real MkDocs builds (the
CI docs job runs ``mkdocs build --strict`` against it), but depends only on
PyYAML and the stdlib, so the site — and, more importantly, its *strict
validation* — works offline and inside the test suite:

* every nav entry must point at an existing page;
* every Markdown file under ``docs/`` must be reachable from the nav
  (orphans fail the build);
* every relative link must resolve to a page in the tree, and every anchor
  (``page.md#section``) must match a heading slug in the target page;
* external ``http(s)`` links are counted but never fetched (no network);
* the generated API reference must be in sync with the live docstrings
  (:func:`repro.docs.apigen.check`).

The emitted site is intentionally plain: one self-contained HTML file per
page with a sidebar built from the nav — enough to read the docs from a
checkout without installing anything.
"""

from __future__ import annotations

import html
import posixpath
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.docs.md import RenderedPage, render

__all__ = ["SiteConfig", "BuildReport", "load_config", "build_site"]


@dataclass(frozen=True)
class SiteConfig:
    """The subset of ``mkdocs.yml`` the fallback builder understands."""

    site_name: str
    docs_dir: Path
    #: Flat page list: ``(title, relative path)`` in nav order.
    pages: tuple[tuple[str, str], ...]
    #: Nav sections: ``(section title or None, [(title, path), ...])``.
    sections: tuple[tuple[str | None, tuple[tuple[str, str], ...]], ...]


@dataclass
class BuildReport:
    """Outcome of one site build."""

    pages_built: int = 0
    internal_links: int = 0
    external_links: int = 0
    problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def _nav_entries(nav, source: str) -> list:
    """Flatten a mkdocs nav list to ``(title, path-or-sublist)`` pairs."""
    if not isinstance(nav, list):
        raise ConfigurationError(f"{source}: 'nav' must be a list")
    entries = []
    for item in nav:
        if isinstance(item, str):
            entries.append((None, item))
        elif isinstance(item, dict) and len(item) == 1:
            title, value = next(iter(item.items()))
            entries.append((str(title), value))
        else:
            raise ConfigurationError(
                f"{source}: nav entries must be 'path' or 'Title: path' "
                f"mappings, got {item!r}")
    return entries


def load_config(config_path: str | Path) -> SiteConfig:
    """Parse ``mkdocs.yml`` into a :class:`SiteConfig`.

    Args:
        config_path: Path to the MkDocs configuration file.

    Returns:
        The parsed configuration (nav flattened, one section level deep —
        the structure the shipped ``mkdocs.yml`` uses).

    Raises:
        ConfigurationError: On a missing file, unparseable YAML or a nav
            structure deeper than one section level.
    """
    import yaml

    config_path = Path(config_path)
    if not config_path.exists():
        raise ConfigurationError(f"no mkdocs config at {config_path}")
    try:
        document = yaml.safe_load(config_path.read_text())
    except yaml.YAMLError as exc:
        raise ConfigurationError(f"{config_path}: invalid YAML: {exc}") from None
    if not isinstance(document, dict) or "nav" not in document:
        raise ConfigurationError(f"{config_path}: needs 'nav' and 'site_name'")
    docs_dir = config_path.parent / str(document.get("docs_dir", "docs"))

    pages: list[tuple[str, str]] = []
    sections: list = []
    for title, value in _nav_entries(document["nav"], str(config_path)):
        if isinstance(value, str):
            entry = (title or value, value)
            pages.append(entry)
            sections.append((None, (entry,)))
        else:
            sub = []
            for sub_title, sub_value in _nav_entries(value, str(config_path)):
                if not isinstance(sub_value, str):
                    raise ConfigurationError(
                        f"{config_path}: nav nesting deeper than one section "
                        f"is not supported by the fallback builder")
                sub.append((sub_title or sub_value, sub_value))
            pages.extend(sub)
            sections.append((title, tuple(sub)))
    return SiteConfig(site_name=str(document.get("site_name", "docs")),
                      docs_dir=docs_dir, pages=tuple(pages),
                      sections=tuple(sections))


_STYLE = """
body { margin: 0; font: 16px/1.6 system-ui, sans-serif; color: #1a2330; }
.layout { display: flex; min-height: 100vh; }
nav.sidebar { width: 16rem; flex: none; background: #f4f6f8;
  border-right: 1px solid #d9dee3; padding: 1.5rem 1rem; }
nav.sidebar h2 { font-size: 0.8rem; text-transform: uppercase;
  letter-spacing: 0.06em; color: #5b6770; margin: 1.2rem 0 0.3rem; }
nav.sidebar a { display: block; color: #1a4f8b; text-decoration: none;
  padding: 0.15rem 0.4rem; border-radius: 4px; }
nav.sidebar a.current { background: #dce8f5; font-weight: 600; }
main { flex: 1; max-width: 52rem; padding: 2rem 3rem; }
pre { background: #f4f6f8; border: 1px solid #d9dee3; border-radius: 6px;
  padding: 0.8rem 1rem; overflow-x: auto; font-size: 0.88rem; }
code { font-family: ui-monospace, monospace; background: #f4f6f8;
  padding: 0.1rem 0.3rem; border-radius: 3px; font-size: 0.92em; }
pre code { padding: 0; background: none; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #d9dee3; padding: 0.35rem 0.7rem; text-align: left; }
th { background: #f4f6f8; }
h1, h2, h3, h4 { line-height: 1.25; }
blockquote { border-left: 4px solid #d9dee3; margin: 1rem 0;
  padding: 0.2rem 1rem; color: #5b6770; }
"""


def _page_html(config: SiteConfig, rel_path: str, rendered: RenderedPage,
               title: str) -> str:
    depth = rel_path.count("/")
    prefix = "../" * depth
    nav_parts = []
    for section, entries in config.sections:
        if section is not None:
            nav_parts.append(f"<h2>{html.escape(section)}</h2>")
        for entry_title, entry_path in entries:
            href = prefix + entry_path[:-3] + ".html"
            css = ' class="current"' if entry_path == rel_path else ""
            nav_parts.append(
                f'<a{css} href="{html.escape(href)}">'
                f"{html.escape(entry_title)}</a>")
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n"
        f"<title>{html.escape(title)} — {html.escape(config.site_name)}</title>\n"
        f"<style>{_STYLE}</style>\n</head>\n<body>\n"
        "<div class=\"layout\">\n"
        f"<nav class=\"sidebar\"><h1>{html.escape(config.site_name)}</h1>\n"
        + "\n".join(nav_parts)
        + "\n</nav>\n<main>\n" + rendered.html + "\n</main>\n</div>\n"
        "</body>\n</html>\n")


def _check_links(rel_path: str, rendered: RenderedPage,
                 renders: dict, report: BuildReport) -> None:
    for target in rendered.links:
        if target.startswith(("http://", "https://", "mailto:")):
            report.external_links += 1
            continue
        report.internal_links += 1
        if target.startswith("#"):
            if target[1:] not in rendered.anchors:
                report.problems.append(
                    f"{rel_path}: broken anchor {target!r}")
            continue
        path_part, _, anchor = target.partition("#")
        resolved = posixpath.normpath(
            posixpath.join(posixpath.dirname(rel_path), path_part))
        if resolved not in renders:
            report.problems.append(
                f"{rel_path}: broken link {target!r} "
                f"(no page {resolved!r} in the nav)")
            continue
        if anchor and anchor not in renders[resolved].anchors:
            report.problems.append(
                f"{rel_path}: broken anchor {target!r} "
                f"({resolved} has no heading #{anchor})")


def build_site(config_path: str | Path,
               output_dir: str | Path | None = None,
               strict: bool = False,
               check_api: bool = True) -> BuildReport:
    """Build the documentation site and run the strict checks.

    Args:
        config_path: Path to ``mkdocs.yml``.
        output_dir: Where to write the HTML tree (``None`` = validate only).
        strict: Raise :class:`~repro.errors.ConfigurationError` on any
            problem instead of returning it in the report.
        check_api: Also verify the generated API reference is in sync with
            the live docstrings (:func:`repro.docs.apigen.check`).

    Returns:
        The :class:`BuildReport` (problems listed when ``strict=False``).

    Raises:
        ConfigurationError: In strict mode, on the first validation failure
            set (missing nav targets, orphan pages, broken links/anchors,
            stale API pages).
    """
    config = load_config(config_path)
    report = BuildReport()

    nav_paths = [path for _, path in config.pages]
    if len(set(nav_paths)) != len(nav_paths):
        report.problems.append(f"nav lists a page twice: {nav_paths}")

    renders: dict[str, RenderedPage] = {}
    for _, rel_path in config.pages:
        source = config.docs_dir / rel_path
        if not source.exists():
            report.problems.append(
                f"nav entry {rel_path!r} does not exist under "
                f"{config.docs_dir}")
            continue
        renders[rel_path] = render(source.read_text())

    on_disk = {str(p.relative_to(config.docs_dir)).replace("\\", "/")
               for p in config.docs_dir.rglob("*.md")}
    for orphan in sorted(on_disk - set(nav_paths)):
        report.problems.append(
            f"page {orphan!r} exists under {config.docs_dir} but is not in "
            f"the mkdocs.yml nav")

    for rel_path, rendered in renders.items():
        _check_links(rel_path, rendered, renders, report)

    if check_api:
        from repro.docs.apigen import check as api_check

        report.problems.extend(api_check(config.docs_dir))

    if output_dir is not None and (not report.problems or not strict):
        output_dir = Path(output_dir)
        for (title, rel_path) in config.pages:
            rendered = renders.get(rel_path)
            if rendered is None:
                continue
            target = output_dir / (rel_path[:-3] + ".html")
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(_page_html(config, rel_path, rendered,
                                         rendered.title or title))
            report.pages_built += 1

    if strict and report.problems:
        raise ConfigurationError(
            "documentation build failed:\n  - " + "\n  - ".join(report.problems))
    return report

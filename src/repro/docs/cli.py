"""``repro docs`` subcommands: build the site, manage the API reference."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["docs_command", "build_docs_parser"]


def _default_config() -> Path:
    """The repository's mkdocs.yml (relative to this source checkout)."""
    return Path(__file__).resolve().parents[3] / "mkdocs.yml"


def build_docs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro docs",
        description="Build the documentation site from source (no MkDocs "
                    "required) and keep the generated API reference fresh",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="render the site and run the checks")
    build.add_argument("--config", metavar="FILE", default=None,
                       help="mkdocs.yml path (default: the repository root)")
    build.add_argument("--output", metavar="DIR", default=None,
                       help="write the HTML tree to DIR (default: validate "
                            "only)")
    build.add_argument("--strict", action="store_true",
                       help="fail on missing nav targets, orphan pages, "
                            "broken links/anchors or a stale API reference")
    build.add_argument("--no-api-check", action="store_true",
                       help="skip the generated-API freshness check")

    api = sub.add_parser("api", help="regenerate or verify docs/api/*.md")
    api.add_argument("--config", metavar="FILE", default=None,
                     help="mkdocs.yml path (default: the repository root)")
    api.add_argument("--check", action="store_true",
                     help="verify the committed pages match the live "
                          "docstrings instead of rewriting them")
    return parser


def docs_command(argv: list[str]) -> int:
    """Entry point of ``repro docs ...``; returns a process exit code."""
    from repro.docs import apigen, site

    args = build_docs_parser().parse_args(argv)
    config_path = Path(args.config) if args.config else _default_config()

    if args.command == "api":
        docs_dir = site.load_config(config_path).docs_dir
        if args.check:
            problems = apigen.check(docs_dir)
            for problem in problems:
                print(problem, file=sys.stderr)
            if problems:
                return 1
            print(f"API reference in sync ({len(apigen.API_PAGES)} pages)")
            return 0
        written = apigen.generate(docs_dir)
        for path in written:
            print(f"wrote {path}")
        return 0

    try:
        report = site.build_site(config_path, output_dir=args.output,
                                 strict=args.strict,
                                 check_api=not args.no_api_check)
    except ConfigurationError as exc:
        print(exc, file=sys.stderr)
        return 1
    for problem in report.problems:
        print(f"warning: {problem}", file=sys.stderr)
    where = f" -> {args.output}" if args.output else " (validate only)"
    print(f"docs: {len(site.load_config(config_path).pages)} pages"
          f"{where}; {report.internal_links} internal links checked, "
          f"{report.external_links} external skipped"
          + ("" if report.ok else f"; {len(report.problems)} problems"))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(docs_command(sys.argv[1:]))

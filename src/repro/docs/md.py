"""Minimal Markdown renderer for the built-from-source docs site.

The documentation builder (:mod:`repro.docs.site`) must work in offline
environments where MkDocs is not installed, so this module implements the
subset of GitHub-flavoured Markdown the ``docs/`` pages actually use:

* ATX headings (``#`` .. ``######``) with GitHub-style anchor slugs,
* fenced code blocks (``` with an optional language info string),
* paragraphs, unordered/ordered lists (one nesting level), block quotes,
  horizontal rules and pipe tables,
* inline code spans, bold, emphasis, links and images.

The same source tree also builds under real MkDocs (the CI docs job runs
``mkdocs build --strict``); this renderer is the dependency-free fallback
that keeps the strict checks runnable everywhere, including the test suite.
"""

from __future__ import annotations

import html
import re
from dataclasses import dataclass, field

__all__ = ["RenderedPage", "render", "slugify"]

_SLUG_STRIP = re.compile(r"[^\w\- ]", re.UNICODE)


def slugify(text: str) -> str:
    """GitHub-style anchor slug of a heading text.

    Args:
        text: The raw heading text (inline markup is stripped by the caller).

    Returns:
        Lower-case slug with spaces as dashes and punctuation removed.
    """
    text = re.sub(r"`([^`]*)`", r"\1", text)
    text = re.sub(r"\*\*([^*]+)\*\*", r"\1", text)
    text = re.sub(r"\*([^*]+)\*", r"\1", text)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    return _SLUG_STRIP.sub("", text.strip().lower()).replace(" ", "-")


@dataclass
class RenderedPage:
    """Result of rendering one Markdown document."""

    html: str
    #: ``(level, text, slug)`` per heading, in document order.
    headings: list = field(default_factory=list)
    #: Raw link targets (href as written, before any resolution).
    links: list = field(default_factory=list)

    @property
    def title(self) -> str:
        """Text of the first top-level heading ('' when there is none)."""
        for level, text, _ in self.headings:
            if level == 1:
                return text
        return self.headings[0][1] if self.headings else ""

    @property
    def anchors(self) -> set:
        """All anchor slugs the page defines."""
        return {slug for _, _, slug in self.headings}


_INLINE_CODE = re.compile(r"`([^`]+)`")
_BOLD = re.compile(r"\*\*(.+?)\*\*")
_EMPHASIS = re.compile(r"(?<!\*)\*([^*]+)\*(?!\*)")
_IMAGE = re.compile(r"!\[([^\]]*)\]\(([^)\s]+)\)")
_LINK = re.compile(r"\[([^\]]+)\]\(([^)\s]+)\)")
_AUTO_LINK = re.compile(r"<(https?://[^>]+)>")


def _render_inline(text: str, links: list) -> str:
    """Inline markup -> HTML (code spans win over everything inside them)."""
    parts = []
    cursor = 0
    for match in _INLINE_CODE.finditer(text):
        parts.append(_render_spans(text[cursor:match.start()], links))
        parts.append(f"<code>{html.escape(match.group(1))}</code>")
        cursor = match.end()
    parts.append(_render_spans(text[cursor:], links))
    return "".join(parts)


def _render_spans(text: str, links: list) -> str:
    text = html.escape(text, quote=False)

    def image(match: re.Match) -> str:
        links.append(match.group(2))
        return (f'<img src="{html.escape(match.group(2))}" '
                f'alt="{html.escape(match.group(1))}">')

    def link(match: re.Match) -> str:
        links.append(match.group(2))
        return (f'<a href="{html.escape(match.group(2))}">'
                f"{match.group(1)}</a>")

    def auto(match: re.Match) -> str:
        links.append(match.group(1))
        return (f'<a href="{html.escape(match.group(1))}">'
                f"{html.escape(match.group(1))}</a>")

    text = _IMAGE.sub(image, text)
    text = _LINK.sub(link, text)
    text = _AUTO_LINK.sub(auto, text)
    text = _BOLD.sub(r"<strong>\1</strong>", text)
    text = _EMPHASIS.sub(r"<em>\1</em>", text)
    return text


_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^(```+|~~~+)\s*([\w+-]*)\s*$")
_LIST_ITEM = re.compile(r"^(\s*)([-*+]|\d+[.)])\s+(.*)$")
_TABLE_DIVIDER = re.compile(r"^\s*\|?\s*:?-+:?\s*(\|\s*:?-+:?\s*)+\|?\s*$")
_HR = re.compile(r"^\s*((\*\s*){3,}|(-\s*){3,}|(_\s*){3,})$")


def _table_cells(line: str) -> list:
    cells = [c.strip() for c in line.strip().strip("|").split("|")]
    return cells


def render(text: str) -> RenderedPage:
    """Render a Markdown document.

    Args:
        text: The Markdown source.

    Returns:
        The :class:`RenderedPage` with body HTML, the heading outline (used
        for navigation titles and anchor validation) and every link target
        (used by the strict link checker).
    """
    lines = text.split("\n")
    out: list[str] = []
    headings: list = []
    links: list = []
    slug_counts: dict[str, int] = {}
    i = 0
    n = len(lines)

    def unique_slug(text_: str) -> str:
        slug = slugify(text_)
        count = slug_counts.get(slug, 0)
        slug_counts[slug] = count + 1
        return slug if count == 0 else f"{slug}-{count}"

    while i < n:
        line = lines[i]
        stripped = line.strip()

        if not stripped:
            i += 1
            continue

        fence = _FENCE.match(stripped)
        if fence:
            marker, language = fence.group(1), fence.group(2)
            body = []
            i += 1
            while i < n and not lines[i].strip().startswith(marker[:3]):
                body.append(lines[i])
                i += 1
            i += 1  # closing fence
            css = f' class="language-{language}"' if language else ""
            out.append(f"<pre><code{css}>"
                       f"{html.escape(chr(10).join(body))}</code></pre>")
            continue

        heading = _HEADING.match(line)
        if heading:
            level = len(heading.group(1))
            text_ = heading.group(2)
            slug = unique_slug(text_)
            headings.append((level, re.sub(r"`([^`]*)`", r"\1", text_), slug))
            out.append(f'<h{level} id="{slug}">'
                       f"{_render_inline(text_, links)}</h{level}>")
            i += 1
            continue

        if _HR.match(stripped):
            out.append("<hr>")
            i += 1
            continue

        if stripped.startswith(">"):
            quote = []
            while i < n and lines[i].strip().startswith(">"):
                quote.append(lines[i].strip().lstrip(">").strip())
                i += 1
            out.append("<blockquote><p>"
                       f"{_render_inline(' '.join(quote), links)}"
                       "</p></blockquote>")
            continue

        item = _LIST_ITEM.match(line)
        if item:
            ordered = item.group(2)[0].isdigit()
            tag = "ol" if ordered else "ul"
            out.append(f"<{tag}>")
            while i < n:
                item = _LIST_ITEM.match(lines[i])
                if item is None:
                    break
                indent = len(item.group(1))
                content = [item.group(3)]
                i += 1
                # continuation lines / one nested level
                nested: list[str] = []
                while i < n and lines[i].strip():
                    sub = _LIST_ITEM.match(lines[i])
                    if sub and len(sub.group(1)) > indent:
                        nested.append(sub.group(3))
                        i += 1
                        continue
                    if sub or _HEADING.match(lines[i]) or _FENCE.match(
                            lines[i].strip()):
                        break
                    content.append(lines[i].strip())
                    i += 1
                item_html = f"<li>{_render_inline(' '.join(content), links)}"
                if nested:
                    item_html += ("<ul>" + "".join(
                        f"<li>{_render_inline(x, links)}</li>"
                        for x in nested) + "</ul>")
                out.append(item_html + "</li>")
                if i < n and not lines[i].strip():
                    next_i = i + 1
                    if next_i < n and _LIST_ITEM.match(lines[next_i]):
                        i = next_i
                        continue
                    break
            out.append(f"</{tag}>")
            continue

        if ("|" in stripped and i + 1 < n
                and _TABLE_DIVIDER.match(lines[i + 1] or "")):
            header = _table_cells(stripped)
            i += 2
            rows = []
            while i < n and "|" in lines[i] and lines[i].strip():
                rows.append(_table_cells(lines[i]))
                i += 1
            out.append("<table><thead><tr>" + "".join(
                f"<th>{_render_inline(c, links)}</th>" for c in header)
                + "</tr></thead><tbody>")
            for row in rows:
                out.append("<tr>" + "".join(
                    f"<td>{_render_inline(c, links)}</td>" for c in row)
                    + "</tr>")
            out.append("</tbody></table>")
            continue

        paragraph = [stripped]
        i += 1
        while i < n and lines[i].strip():
            peek = lines[i]
            if (_HEADING.match(peek) or _FENCE.match(peek.strip())
                    or _LIST_ITEM.match(peek) or peek.strip().startswith(">")
                    or _HR.match(peek.strip())):
                break
            if "|" in peek and i + 1 < n and _TABLE_DIVIDER.match(lines[i + 1]):
                break
            paragraph.append(peek.strip())
            i += 1
        out.append(f"<p>{_render_inline(' '.join(paragraph), links)}</p>")

    return RenderedPage(html="\n".join(out), headings=headings, links=links)

"""Resilient scenario-planning service: HTTP API over the study layer.

``repro serve`` wraps the declarative study layer (:mod:`repro.study`) in a
long-running JSON-over-HTTP service so operators plan corridor deployments
on demand instead of re-running CLIs.  The stack is **stdlib only**
(``http.server`` + ``threading``, the :mod:`repro.docs` no-third-party
precedent) and robustness is the design center:

* **typed schemas at the edge** (:mod:`repro.service.schemas`) — malformed
  requests are rejected with 400 before any work is admitted;
* **bounded queue with admission control** (:mod:`repro.service.queue`) —
  queue depth and per-client in-flight caps are hard limits; overload
  returns 429 with a ``Retry-After`` estimate instead of growing memory;
* **idempotent dedup** — submissions are keyed by
  :attr:`~repro.study.spec.StudySpec.compute_hash`, so identical requests
  coalesce onto one running job or are served straight from the finished
  one (and its :class:`~repro.study.results.StudyStore` shards);
* **per-job deadlines** — an expiring job is cancelled through the
  runner's ``cancel`` hook and lands in an explicit ``"partial"`` state
  with its completed shards retrievable (HTTP 206), not an error;
* **crash-safe job store** (:mod:`repro.service.jobstore`) — an
  append-only ``jobs.jsonl`` in the :class:`~repro.study.journal.RunJournal`
  discipline; a killed-and-restarted server replays it, re-enqueues every
  open job and resumes from the stored shards bit-identically;
* **graceful drain** (:mod:`repro.service.app`) — SIGTERM stops
  admissions (``/readyz`` flips to 503), finishes or checkpoints in-flight
  jobs, then exits.

See ``docs/service.md`` for endpoints, schemas and the job-lifecycle state
machine, and ``docs/robustness.md`` for how job states map to HTTP status
codes and CLI exit codes.
"""

from repro.service.app import ScenarioService, ServiceApp, serve
from repro.service.jobstore import JobStore
from repro.service.queue import JOB_STATES, TERMINAL_STATES, Job, JobQueue
from repro.service.schemas import JobRequest, JobView

__all__ = [
    "ScenarioService",
    "ServiceApp",
    "serve",
    "JobStore",
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobView",
]

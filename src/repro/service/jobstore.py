"""Crash-safe job store: the service's append-only ``jobs.jsonl``.

The queue never trusts process memory with job state: every lifecycle
transition appends one JSON object to ``jobs.jsonl`` through the same
:class:`~repro.study.journal.RunJournal` machinery as the study runner's
``run.jsonl`` (persistent append handle, flush per event, ``OSError``
swallowed — observation must never take down the work).  A
killed-and-restarted server :meth:`replays <JobStore.replay>` the file,
folds the events into per-job final states, re-enqueues every job that was
queued or running, and serves finished jobs' results straight from the
:class:`~repro.study.results.StudyStore` shards — recovery is a read, not
a rebuild.

Event schema (one JSON object per line)::

    {"event": "<type>", "t": <unix seconds>, ...}

=============== ============================================================
event            extra fields
=============== ============================================================
service_start    workers, max_queue, max_per_client, recovered
job_submitted    job, study, compute_hash, client, document, options,
                 deadline_t
job_started      job
job_finished     job, state, cases, wall_s, error
job_cancelled    job, was
job_requeued     job
service_stop     drained, open
=============== ============================================================

This table is load-bearing: ``tests/test_journal_schema.py`` introspects
every ``emit(...)`` call site in this module and asserts the event names
and field sets match it, exactly as it does for the runner's journal.
"""

from __future__ import annotations

from pathlib import Path

from repro.study.journal import RunJournal, scan_journal

__all__ = ["JobStore"]

#: Job states a replayed job may be recovered in (terminal states), plus
#: the open states (``queued`` / ``running``) that trigger a re-enqueue.
_OPEN_STATES = ("queued", "running")


class JobStore:
    """Append-only ``jobs.jsonl`` writer/replayer (no-op without a path).

    Args:
        path: The ``jobs.jsonl`` file, or ``None`` for an in-memory-only
            service (no crash recovery — unit tests and throwaway runs).
    """

    def __init__(self, path: str | Path | None) -> None:
        self.path = Path(path) if path is not None else None
        self._journal = RunJournal(self.path)

    def close(self) -> None:
        """Close the append handle (a later event reopens it)."""
        self._journal.close()

    # -- lifecycle events ----------------------------------------------------

    def service_start(self, workers: int, max_queue: int,
                      max_per_client: int, recovered: int) -> None:
        """Record a (re)started service and how many jobs it recovered."""
        self._journal.emit("service_start", workers=workers,
                           max_queue=max_queue, max_per_client=max_per_client,
                           recovered=recovered)

    def job_submitted(self, job: str, study: str, compute_hash: str,
                      client: str, document: dict, options: dict,
                      deadline_t: float | None) -> None:
        """Record an admitted job with everything needed to rebuild it."""
        self._journal.emit("job_submitted", job=job, study=study,
                           compute_hash=compute_hash, client=client,
                           document=document, options=options,
                           deadline_t=deadline_t)

    def job_started(self, job: str) -> None:
        """Record a job leaving the queue for a worker."""
        self._journal.emit("job_started", job=job)

    def job_finished(self, job: str, state: str, cases: int, wall_s: float,
                     error: str | None) -> None:
        """Record a terminal transition (``done``/``partial``/``failed``/
        ``cancelled``)."""
        self._journal.emit("job_finished", job=job, state=state, cases=cases,
                           wall_s=wall_s, error=error)

    def job_cancelled(self, job: str, was: str) -> None:
        """Record a client cancellation (``was`` is the state it hit)."""
        self._journal.emit("job_cancelled", job=job, was=was)

    def job_requeued(self, job: str) -> None:
        """Record a recovered open job re-entering the queue on restart."""
        self._journal.emit("job_requeued", job=job)

    def service_stop(self, drained: bool, open: int) -> None:
        """Record shutdown: whether the drain completed and what stayed open."""
        self._journal.emit("service_stop", drained=drained, open=open)

    # -- recovery ------------------------------------------------------------

    def replay(self) -> tuple[dict[str, dict], int]:
        """Fold ``jobs.jsonl`` into per-job final states.

        Returns:
            ``(jobs, skipped)`` — a mapping of job id to its folded record
            (``state``, ``document``, ``options``, timestamps, error) in
            submission order, and the mid-file corruption count from
            :func:`~repro.study.journal.scan_journal`.  Jobs whose folded
            state is still open (``queued``/``running``) are the ones a
            restart must re-enqueue.  A missing or disabled store replays
            empty.
        """
        if self.path is None:
            return {}, 0
        events, skipped = scan_journal(self.path)
        jobs: dict[str, dict] = {}
        for event in events:
            kind = event.get("event")
            job_id = event.get("job")
            if kind == "job_submitted":
                jobs[job_id] = {
                    "job": job_id,
                    "state": "queued",
                    "study": event.get("study"),
                    "compute_hash": event.get("compute_hash"),
                    "client": event.get("client"),
                    "document": event.get("document"),
                    "options": event.get("options") or {},
                    "deadline_t": event.get("deadline_t"),
                    "submitted_t": event.get("t"),
                    "started_t": None,
                    "finished_t": None,
                    "error": None,
                }
                continue
            record = jobs.get(job_id)
            if record is None:
                continue  # event for a job whose submission line was lost
            if kind == "job_started":
                record["state"] = "running"
                record["started_t"] = event.get("t")
            elif kind == "job_finished":
                record["state"] = event.get("state")
                record["finished_t"] = event.get("t")
                record["error"] = event.get("error")
            elif kind == "job_cancelled":
                record["state"] = "cancelled"
                record["finished_t"] = event.get("t")
            elif kind == "job_requeued":
                record["state"] = "queued"
                record["started_t"] = None
        return jobs, skipped

    def open_jobs(self) -> list[dict]:
        """The replayed records a restart must re-enqueue, in file order."""
        jobs, _ = self.replay()
        return [record for record in jobs.values()
                if record["state"] in _OPEN_STATES]

"""HTTP edge of the scenario-planning service (stdlib ``http.server``).

:class:`ServiceApp` is a transport-free request dispatcher — method + path
in, ``(status, headers, payload)`` out — so every route, status code and
error mapping is unit-testable without opening a socket.
:class:`ScenarioService` binds it to a ``ThreadingHTTPServer`` and owns the
lifecycle: start the :class:`~repro.service.queue.JobQueue` (recovering any
journaled jobs), serve, and on SIGTERM/SIGINT **drain gracefully** —
``/readyz`` flips to 503 immediately, in-flight jobs finish or checkpoint
within the grace budget, then the listener closes.

Endpoints (all JSON)::

    GET     /healthz            200 live queue counters
    GET     /readyz             200 ready | 503 draining
    POST    /jobs               201 created | 200 coalesced | 400 invalid
                                | 429 over capacity (+ Retry-After)
                                | 503 draining (+ Retry-After)
    GET     /jobs               200 every retained job
    GET     /jobs/{id}          200 job view | 404 unknown
    GET     /jobs/{id}/result   200 done | 206 partial | 202 still open
                                | 410 cancelled | 500 failed | 404 unknown
    DELETE  /jobs/{id}          200 cancellation accepted | 409 already
                                terminal | 404 unknown

The 206 is deliberate: a deadline-expired or drain-checkpointed job serves
the table of its completed shards as an explicit *partial content* answer,
mirroring the CLI's exit code 3 (see ``docs/robustness.md`` for the full
job-state ↔ HTTP ↔ exit-code mapping).
"""

from __future__ import annotations

import json
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import AdmissionError, ConfigurationError, UnknownJobError
from repro.service.queue import JobQueue
from repro.service.schemas import JobRequest

__all__ = ["ScenarioService", "ServiceApp", "serve"]

#: Hard cap on request body size [bytes] (HTTP 413 beyond it).
MAX_BODY_BYTES = 1 << 20

_ROUTES = (
    ("GET", re.compile(r"^/healthz$"), "healthz"),
    ("GET", re.compile(r"^/readyz$"), "readyz"),
    ("POST", re.compile(r"^/jobs$"), "submit"),
    ("GET", re.compile(r"^/jobs$"), "list_jobs"),
    ("GET", re.compile(r"^/jobs/([0-9a-f]{1,64})$"), "get_job"),
    ("GET", re.compile(r"^/jobs/([0-9a-f]{1,64})/result$"), "get_result"),
    ("DELETE", re.compile(r"^/jobs/([0-9a-f]{1,64})$"), "cancel_job"),
)


def _retry_headers(retry_after_s: float) -> dict:
    return {"Retry-After": str(max(1, round(retry_after_s)))}


class ServiceApp:
    """Transport-free dispatcher from (method, path, body) to JSON responses.

    Args:
        queue: The job queue every route operates on.
    """

    def __init__(self, queue: JobQueue) -> None:
        self.queue = queue

    def dispatch(self, method: str, path: str, body: bytes,
                 client: str) -> tuple[int, dict, dict]:
        """Route one request.

        Args:
            method: HTTP method.
            path: Request path (query strings are ignored).
            body: Raw request body.
            client: Client identity (``X-Client-Id`` header or peer
                address) for the per-client admission cap.

        Returns:
            ``(status, extra_headers, payload)`` — the payload is the
            JSON-serialisable response body.
        """
        path = path.split("?", 1)[0]
        allowed: list[str] = []
        for route_method, pattern, name in _ROUTES:
            match = pattern.match(path)
            if match is None:
                continue
            if route_method != method:
                allowed.append(route_method)
                continue
            handler = getattr(self, "_" + name)
            try:
                return handler(*match.groups(), body=body, client=client)
            except UnknownJobError as exc:
                return 404, {}, {"error": f"unknown job {exc.args[0]!r}"}
            except ConfigurationError as exc:
                return 400, {}, {"error": str(exc)}
            except AdmissionError as exc:
                status = 503 if self.queue.draining else 429
                return (status, _retry_headers(exc.retry_after_s),
                        {"error": str(exc),
                         "retry_after_s": exc.retry_after_s})
        if allowed:
            return (405, {"Allow": ", ".join(sorted(set(allowed)))},
                    {"error": f"method {method} not allowed on {path}"})
        return 404, {}, {"error": f"no route for {path}"}

    # -- routes --------------------------------------------------------------

    def _healthz(self, body: bytes, client: str) -> tuple[int, dict, dict]:
        return 200, {}, {"status": "ok", **self.queue.stats()}

    def _readyz(self, body: bytes, client: str) -> tuple[int, dict, dict]:
        if self.queue.draining:
            return 503, _retry_headers(30.0), {"status": "draining"}
        return 200, {}, {"status": "ready"}

    def _submit(self, body: bytes, client: str) -> tuple[int, dict, dict]:
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            return 400, {}, {"error": f"request body is not JSON: {exc}"}
        request = JobRequest.from_mapping(payload, client=client)
        job, created = self.queue.submit(request)
        return (201 if created else 200, {},
                {"created": created, "job": job.view().to_mapping()})

    def _list_jobs(self, body: bytes, client: str) -> tuple[int, dict, dict]:
        return 200, {}, {"jobs": [job.view().to_mapping()
                                  for job in self.queue.list_jobs()]}

    def _get_job(self, job_id: str, body: bytes,
                 client: str) -> tuple[int, dict, dict]:
        job = self.queue.get(job_id)
        return 200, {}, {"job": job.view().to_mapping()}

    def _get_result(self, job_id: str, body: bytes,
                    client: str) -> tuple[int, dict, dict]:
        job, document = self.queue.result(job_id)
        view = job.view().to_mapping()
        if job.state in ("queued", "running"):
            return (202, _retry_headers(2.0),
                    {"job": view, "error": "job still open; poll again"})
        if job.state == "failed":
            return 500, {}, {"job": view, "error": job.error}
        if job.state == "cancelled":
            return 410, {}, {"job": view, "error": "job was cancelled",
                             "result": document}
        status = 200 if job.state == "done" else 206
        return status, {}, {"job": view, "result": document}

    def _cancel_job(self, job_id: str, body: bytes,
                    client: str) -> tuple[int, dict, dict]:
        job, accepted = self.queue.cancel(job_id)
        if not accepted:
            return (409, {}, {"job": job.view().to_mapping(),
                              "error": f"job is already {job.state}"})
        return 200, {}, {"job": job.view().to_mapping()}


def _make_handler(app: ServiceApp) -> type[BaseHTTPRequestHandler]:
    """A ``BaseHTTPRequestHandler`` subclass bound to one app instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # request logging lives in jobs.jsonl, not stderr

        def _client_id(self) -> str:
            header = self.headers.get("X-Client-Id")
            if header:
                return header.strip()
            return str(self.client_address[0])

        def _respond(self, status: int, headers: dict, payload: dict) -> None:
            data = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _handle(self, method: str) -> None:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                length = 0
            if length > MAX_BODY_BYTES:
                self._respond(413, {}, {
                    "error": f"request body exceeds {MAX_BODY_BYTES} bytes"})
                return
            body = self.rfile.read(length) if length > 0 else b""
            try:
                status, headers, payload = app.dispatch(
                    method, self.path, body, self._client_id())
            except Exception as exc:  # a bug must not kill the listener
                status, headers = 500, {}
                payload = {"error": f"internal error: {exc!r}"}
            self._respond(status, headers, payload)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._handle("GET")

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            self._handle("POST")

        def do_DELETE(self) -> None:  # noqa: N802 - http.server API
            self._handle("DELETE")

    return Handler


class ScenarioService:
    """The bound service: queue + app + threaded HTTP listener.

    Args:
        host: Bind address.
        port: Bind port (``0`` picks a free one; see :attr:`port`).
        store_dir: Service state directory (shards, ``jobs.jsonl``, run
            journals) — ``None`` runs in memory without crash recovery.
        workers: Concurrent job-executing threads.
        max_queue: Waiting-job admission bound.
        max_per_client: Per-client open-job admission cap.
        max_job_procs: Per-job worker-process clamp.
        drain_grace_s: Wall-clock budget for in-flight jobs on shutdown.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 store_dir: str | Path | None = None, *, workers: int = 2,
                 max_queue: int = 8, max_per_client: int = 4,
                 max_job_procs: int = 1,
                 drain_grace_s: float = 30.0) -> None:
        self.queue = JobQueue(store_dir, workers=workers, max_queue=max_queue,
                              max_per_client=max_per_client,
                              max_job_procs=max_job_procs)
        self.app = ServiceApp(self.queue)
        self.drain_grace_s = drain_grace_s
        self.server = ThreadingHTTPServer((host, port),
                                          _make_handler(self.app))
        self.server.daemon_threads = True
        self._shutdown_started = threading.Event()

    @property
    def port(self) -> int:
        """The actual bound port (useful with ``port=0``)."""
        return self.server.server_address[1]

    def start(self) -> None:
        """Start the queue workers (recovering journaled jobs first)."""
        self.queue.start()

    def serve_forever(self) -> None:
        """Serve until :meth:`initiate_shutdown` completes the drain."""
        try:
            self.server.serve_forever(poll_interval=0.1)
        finally:
            self.server.server_close()

    def initiate_shutdown(self) -> None:
        """Begin the graceful drain (idempotent, signal-handler safe).

        Admissions are refused immediately (``/readyz`` → 503, ``POST
        /jobs`` → 503) while status/result endpoints keep serving; once
        in-flight jobs finished or checkpointed the listener stops and
        :meth:`serve_forever` returns.
        """
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()

        def _drain() -> None:
            self.queue.drain(self.drain_grace_s)
            self.server.shutdown()

        threading.Thread(target=_drain, name="service-drain",
                         daemon=True).start()


def serve(host: str = "127.0.0.1", port: int = 8765,
          store_dir: str | Path | None = None, *, workers: int = 2,
          max_queue: int = 8, max_per_client: int = 4,
          max_job_procs: int = 1, drain_grace_s: float = 30.0,
          install_signals: bool = True,
          ready: "threading.Event | None" = None) -> ScenarioService:
    """Run the service until SIGTERM/SIGINT drains it (the CLI entry).

    Args:
        host: Bind address.
        port: Bind port (``0`` picks a free one).
        store_dir: Service state directory; ``None`` disables persistence.
        workers: Concurrent job-executing threads.
        max_queue: Waiting-job admission bound.
        max_per_client: Per-client open-job admission cap.
        max_job_procs: Per-job worker-process clamp.
        drain_grace_s: Shutdown grace budget [s].
        install_signals: Install SIGTERM/SIGINT handlers (main thread
            only; tests drive :meth:`ScenarioService.initiate_shutdown`
            directly).
        ready: Optional event set once the listener is bound and the
            queue recovered — lets a test thread wait for readiness.

    Returns:
        The drained service (exposes the queue for post-run inspection).
    """
    service = ScenarioService(host, port, store_dir, workers=workers,
                              max_queue=max_queue,
                              max_per_client=max_per_client,
                              max_job_procs=max_job_procs,
                              drain_grace_s=drain_grace_s)
    service.start()
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum,
                          lambda *_: service.initiate_shutdown())
    if ready is not None:
        ready.set()
    service.serve_forever()
    return service

"""Typed request/response schemas of the scenario-planning service.

Validation happens **at the edge**: an HTTP payload is parsed into a frozen
:class:`JobRequest` before anything touches the queue, so a malformed study
document, a negative retry count or an unresolvable backend is a 400
response — never a poisoned job.  The study document itself is validated by
the same :func:`~repro.study.spec.study_from_mapping` path the CLI uses, so
the service accepts exactly the documents ``repro study run`` accepts —
any of the five engines, including the ``network`` topology optimizer's
per-km-budget sweeps.

Responses are equally typed: :class:`JobView` is the single projection of a
job's observable state (identity, lifecycle timestamps, progress, error
provenance) every endpoint renders, so clients see one schema whether they
poll ``/jobs/{id}``, list ``/jobs`` or receive a submit acknowledgement.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.errors import ConfigurationError
from repro.study.spec import StudySpec, study_from_mapping

__all__ = ["JobRequest", "JobView"]

#: Hard ceiling on per-job worker processes a request may ask for; the
#: queue additionally clamps to its own ``max_job_procs``.
MAX_REQUEST_JOBS = 8

_REQUEST_KEYS = {"study", "jobs", "shards", "retries", "shard_timeout_s",
                 "deadline_s", "backend", "shard_index", "shard_of"}


def _positive_number(value, name: str, allow_none: bool = True):
    if value is None and allow_none:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def _bounded_int(value, name: str, low: int, high: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value}")
    return value


@dataclass(frozen=True)
class JobRequest:
    """One validated job submission: a study document plus run options.

    Attributes
    ----------
    document:
        The raw study mapping (the same schema as a ``studies/*.yaml``
        file), kept verbatim so the job store can persist it and a
        restarted server can rebuild the spec.
    jobs:
        Worker processes for the study run (clamped by the queue's
        ``max_job_procs``; at most :data:`MAX_REQUEST_JOBS`).
    shards:
        Shard count override (``None`` uses the runner default).
    retries:
        Per-shard retry budget forwarded to the supervised runner.
    shard_timeout_s:
        Wall-clock budget per shard attempt [s] (needs ``jobs >= 2``).
    deadline_s:
        Whole-job wall-clock budget [s], measured from admission.  An
        expiring job is cancelled through the runner's ``cancel`` hook and
        finishes in the ``"partial"`` state with its completed shards
        retrievable.
    backend:
        Kernel backend name for the stochastic engines (validated as
        resolvable at the edge).
    shard_index / shard_of:
        When both are set, the job executes only worker ``shard_index``'s
        round-robin slice of an ``shard_of``-way distributed split
        (:func:`~repro.study.distributed.run_shard_slice`) and leaves a
        signed shard manifest in the service store for a later
        ``repro study merge``.  Must be set together, with
        ``0 <= shard_index < shard_of``.
    client:
        Submitting client identity (the ``X-Client-Id`` header, falling
        back to the peer address) — the key of the per-client in-flight
        admission cap.
    """

    document: dict
    jobs: int = 1
    shards: int | None = None
    retries: int = 0
    shard_timeout_s: float | None = None
    deadline_s: float | None = None
    backend: str | None = None
    shard_index: int | None = None
    shard_of: int | None = None
    client: str = "anonymous"

    @classmethod
    def from_mapping(cls, payload, client: str = "anonymous") -> "JobRequest":
        """Validate an HTTP payload into a request (the 400 gate).

        Args:
            payload: The decoded JSON body; must be a mapping with a
                ``study`` document and optional run options.
            client: Submitting client identity.

        Returns:
            The validated request.

        Raises:
            ConfigurationError: On a non-mapping payload, unknown keys, a
                missing/invalid study document, out-of-range options or an
                unresolvable backend — everything the edge turns into an
                HTTP 400.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"request body must be a JSON object, "
                f"got {type(payload).__name__}")
        unknown = set(payload) - _REQUEST_KEYS
        if unknown:
            raise ConfigurationError(
                f"unknown request keys {sorted(unknown)}; "
                f"accepted: {sorted(_REQUEST_KEYS)}")
        if "study" not in payload:
            raise ConfigurationError("request needs a 'study' document")
        document = payload["study"]
        if not isinstance(document, dict):
            raise ConfigurationError(
                f"'study' must be a study document mapping, "
                f"got {type(document).__name__}")
        # Validate the document end to end (axes, engine contract, derived
        # metrics) exactly like `repro study run` would.
        study_from_mapping(document, source="<request>")
        jobs = _bounded_int(payload.get("jobs", 1), "jobs", 1,
                            MAX_REQUEST_JOBS)
        shards = payload.get("shards")
        if shards is not None:
            shards = _bounded_int(shards, "shards", 1, 4096)
        retries = _bounded_int(payload.get("retries", 0), "retries", 0, 16)
        shard_timeout_s = _positive_number(
            payload.get("shard_timeout_s"), "shard_timeout_s")
        deadline_s = _positive_number(payload.get("deadline_s"), "deadline_s")
        backend = payload.get("backend")
        if backend is not None:
            if not isinstance(backend, str):
                raise ConfigurationError(
                    f"backend must be a string, got {backend!r}")
            from repro.backend import resolve_backend_name
            backend = resolve_backend_name(backend)
        shard_index = payload.get("shard_index")
        shard_of = payload.get("shard_of")
        if (shard_index is None) != (shard_of is None):
            raise ConfigurationError(
                "shard_index and shard_of must be provided together")
        if shard_of is not None:
            shard_of = _bounded_int(shard_of, "shard_of", 1, 1024)
            shard_index = _bounded_int(shard_index, "shard_index", 0,
                                       shard_of - 1)
        return cls(document=dict(document), jobs=jobs, shards=shards,
                   retries=retries, shard_timeout_s=shard_timeout_s,
                   deadline_s=deadline_s, backend=backend,
                   shard_index=shard_index, shard_of=shard_of,
                   client=str(client))

    def spec(self) -> StudySpec:
        """The validated :class:`~repro.study.spec.StudySpec` of the document."""
        return study_from_mapping(self.document, source="<request>")

    def options(self) -> dict:
        """The run options as a plain mapping (persisted to the job store)."""
        return {"jobs": self.jobs, "shards": self.shards,
                "retries": self.retries,
                "shard_timeout_s": self.shard_timeout_s,
                "deadline_s": self.deadline_s, "backend": self.backend,
                "shard_index": self.shard_index, "shard_of": self.shard_of}


@dataclass(frozen=True)
class JobView:
    """The observable state of one job — the response schema of every
    job endpoint.

    Attributes
    ----------
    job:
        Job id (also the path segment of ``/jobs/{id}``).
    state:
        One of :data:`~repro.service.queue.JOB_STATES`.
    study / engine / compute_hash:
        Study provenance (the dedup key is ``compute_hash``).
    client:
        Submitting client identity.
    submitted_t / started_t / finished_t:
        Unix lifecycle timestamps (``None`` until reached).
    deadline_t:
        Absolute unix deadline (``None`` without one).
    cases:
        Total case count of the study.
    progress_done / progress_total:
        Completed vs. total shards of the current (or final) run.
    error:
        Failure provenance for ``"failed"`` jobs, else ``None``.
    """

    job: str
    state: str
    study: str
    engine: str
    compute_hash: str
    client: str
    submitted_t: float
    started_t: float | None
    finished_t: float | None
    deadline_t: float | None
    cases: int
    progress_done: int
    progress_total: int
    error: str | None

    def to_mapping(self) -> dict:
        """The JSON-ready response payload."""
        return asdict(self)

"""Supervised job queue: bounded admission, deadlines, dedup, drain.

The queue is the robustness core of the scenario-planning service.  Its
contract, in order of importance:

* **bounded, always** — at most ``max_queue`` jobs wait and at most
  ``workers`` run; a submission beyond either the queue bound or the
  per-client in-flight cap raises :class:`~repro.errors.AdmissionError`
  (HTTP 429 + ``Retry-After``) instead of growing memory;
* **idempotent** — submissions are keyed by
  :attr:`~repro.study.spec.StudySpec.compute_hash`; an identical request
  coalesces onto the open job computing it, or is served by the finished
  one (whose shards live in the :class:`~repro.study.results.StudyStore`);
* **deadline-aware** — a job carrying ``deadline_s`` is cancelled through
  the runner's ``cancel`` hook when its absolute deadline passes and lands
  in the explicit ``"partial"`` state with every completed shard
  retrievable — deadline expiry is a *graceful degradation*, not an error;
* **crash-safe** — every transition is journaled to ``jobs.jsonl``
  (:mod:`repro.service.jobstore`); :meth:`JobQueue.recover` replays it so
  a killed server re-enqueues open jobs and resumes them from their stored
  shards bit-identically (the CRN contract extends to the service layer);
* **drainable** — :meth:`JobQueue.drain` stops admissions, lets in-flight
  jobs finish within a grace budget, then checkpoints the stragglers
  (cancel → ``"partial"``, shards persisted) and stops the workers.

Job lifecycle state machine::

    queued ──► running ──► done        (all shards complete)
      │           ├──────► partial     (deadline / drain checkpoint)
      │           ├──────► failed      (engine error, retries exhausted)
      │           └──────► cancelled   (client DELETE while running)
      └──────────────────► cancelled   (client DELETE while queued)

``queued`` and ``running`` are the *open* states a restart re-enqueues;
the other four are terminal.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ReproError,
    UnknownJobError,
)
from repro.service.jobstore import JobStore
from repro.service.schemas import JobRequest, JobView
from repro.study.distributed import run_shard_slice
from repro.study.journal import RunJournal
from repro.study.results import StudyStore
from repro.study.runner import run_study

__all__ = ["JOB_STATES", "TERMINAL_STATES", "Job", "JobQueue"]

#: Every job lifecycle state, open states first.
JOB_STATES = ("queued", "running", "done", "partial", "failed", "cancelled")

#: States a job can never leave (everything but ``queued``/``running``).
TERMINAL_STATES = ("done", "partial", "failed", "cancelled")

#: Poll interval [s] of the drain loop.
_DRAIN_POLL_S = 0.05


@dataclass
class Job:
    """Mutable queue-side state of one admitted job.

    All mutation happens under the queue's lock; HTTP handlers only ever
    see the :meth:`view` projection.

    Attributes
    ----------
    job:
        Job id (``/jobs/{id}`` path segment).
    request:
        The validated :class:`~repro.service.schemas.JobRequest`.
    compute_hash:
        The study's :attr:`~repro.study.spec.StudySpec.compute_hash` — the
        dedup key.
    state:
        One of :data:`JOB_STATES`.
    submitted_t / started_t / finished_t / deadline_t:
        Unix timestamps (absolute, so deadlines survive a restart).
    cases:
        Total case count of the study.
    progress_done / progress_total:
        Shard progress of the current (or final) run.
    error:
        Failure provenance for ``"failed"`` jobs.
    result:
        The finished run's JSON document (rebuilt from the store on
        demand after a restart).
    cancel_event / cancel_cause:
        The runner's cancellation hook and why it fired
        (``"client"`` / ``"drain"``; deadline expiry needs no event).
    """

    job: str
    request: JobRequest
    compute_hash: str
    state: str = "queued"
    submitted_t: float = 0.0
    started_t: float | None = None
    finished_t: float | None = None
    deadline_t: float | None = None
    cases: int = 0
    progress_done: int = 0
    progress_total: int = 0
    error: str | None = None
    result: dict | None = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    cancel_cause: str | None = None

    def view(self) -> JobView:
        """The response-schema projection of this job."""
        document = self.request.document
        return JobView(
            job=self.job, state=self.state,
            study=str(document.get("name", "")),
            engine=str(document.get("engine", "")),
            compute_hash=self.compute_hash, client=self.request.client,
            submitted_t=self.submitted_t, started_t=self.started_t,
            finished_t=self.finished_t, deadline_t=self.deadline_t,
            cases=self.cases, progress_done=self.progress_done,
            progress_total=self.progress_total, error=self.error)


class JobQueue:
    """Bounded, supervised, crash-safe job queue over the study runner.

    Args:
        store_dir: Service state directory — study shards persist under
            ``store_dir/shards`` (the resume/dedup substrate), the job
            journal at ``store_dir/jobs.jsonl`` and per-job run journals
            under ``store_dir/runs/``.  ``None`` runs fully in memory
            (no crash recovery).
        workers: Concurrent job-executing threads.
        max_queue: Hard bound on *waiting* jobs (admission control).
        max_per_client: Hard bound on one client's open (queued+running)
            jobs.
        max_job_procs: Cap on per-job worker processes (a request's
            ``jobs`` is clamped to this).
        retain: Terminal jobs kept in memory for ``/jobs/{id}`` lookups;
            the oldest beyond this are pruned (their journal lines and
            shards remain on disk).
    """

    def __init__(self, store_dir: str | Path | None = None, *,
                 workers: int = 2, max_queue: int = 8,
                 max_per_client: int = 4, max_job_procs: int = 1,
                 retain: int = 64) -> None:
        for name, value in (("workers", workers), ("max_queue", max_queue),
                            ("max_per_client", max_per_client),
                            ("max_job_procs", max_job_procs),
                            ("retain", retain)):
            if value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.workers = workers
        self.max_queue = max_queue
        self.max_per_client = max_per_client
        self.max_job_procs = max_job_procs
        self.retain = retain
        if self.store_dir is not None:
            self.study_store: StudyStore | None = StudyStore(
                maxsize=64, cache_dir=self.store_dir / "shards")
            self.jobstore = JobStore(self.store_dir / "jobs.jsonl")
        else:
            self.study_store = None
            self.jobstore = JobStore(None)
        self._cv = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._pending: deque[str] = deque()
        self._threads: list[threading.Thread] = []
        self._draining = False
        self._stopped = False
        self._ema_wall_s: float | None = None

    # -- introspection -------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` started (admissions refused)."""
        return self._draining

    def stats(self) -> dict:
        """Live queue counters (the ``/healthz`` payload)."""
        with self._cv:
            states = [job.state for job in self._jobs.values()]
            return {
                "jobs": len(states),
                "queued": states.count("queued"),
                "running": states.count("running"),
                "workers": self.workers,
                "max_queue": self.max_queue,
                "max_per_client": self.max_per_client,
                "draining": self._draining,
            }

    def get(self, job_id: str) -> Job:
        """The job for ``job_id``.

        Raises:
            UnknownJobError: When no such job is known (HTTP 404).
        """
        with self._cv:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def list_jobs(self) -> list[Job]:
        """Every retained job, in submission order."""
        with self._cv:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_t)

    # -- admission -----------------------------------------------------------

    def submit(self, request: JobRequest) -> tuple[Job, bool]:
        """Admit (or coalesce) one validated submission.

        Dedup runs before admission control: a request whose
        ``compute_hash`` matches an open job returns that job, and one
        matching a ``"done"`` job returns the finished job (served from
        the store) — neither consumes queue capacity.  Only a genuinely
        new computation is subject to the queue bound and the per-client
        cap.

        Args:
            request: The edge-validated request.

        Returns:
            ``(job, created)`` — ``created`` is False when the request
            coalesced onto an existing job.

        Raises:
            AdmissionError: When the service is draining, the queue is at
                its bound, or the client is at its in-flight cap (the HTTP
                edge renders 429/503 with ``Retry-After``).
        """
        spec = request.spec()
        compute_hash = spec.compute_hash
        with self._cv:
            if self._draining or self._stopped:
                raise AdmissionError(
                    "service is draining and admits no new jobs",
                    retry_after_s=30.0)
            match = self._dedup_match(compute_hash, request)
            if match is not None:
                return match, False
            if len(self._pending) >= self.max_queue:
                raise AdmissionError(
                    f"job queue is at its bound ({self.max_queue} waiting); "
                    f"retry later", retry_after_s=self._retry_after())
            open_for_client = sum(
                1 for job in self._jobs.values()
                if job.request.client == request.client
                and job.state not in TERMINAL_STATES)
            if open_for_client >= self.max_per_client:
                raise AdmissionError(
                    f"client {request.client!r} already has "
                    f"{open_for_client} jobs in flight (cap "
                    f"{self.max_per_client})",
                    retry_after_s=self._retry_after())
            now = time.time()
            job = Job(
                job=uuid.uuid4().hex[:12], request=request,
                compute_hash=compute_hash, submitted_t=now,
                deadline_t=(now + request.deadline_s
                            if request.deadline_s is not None else None),
                cases=spec.case_count)
            self._jobs[job.job] = job
            self._pending.append(job.job)
            self.jobstore.job_submitted(
                job=job.job, study=spec.name, compute_hash=compute_hash,
                client=request.client, document=request.document,
                options=request.options(), deadline_t=job.deadline_t)
            self._cv.notify()
            return job, True

    def _dedup_match(self, compute_hash: str,
                     request: JobRequest) -> Job | None:
        """An open or finished job this request coalesces onto (lock held).

        Two submissions coalesce only when they compute the same thing:
        same ``compute_hash`` *and* the same distributed slice — a full
        run never coalesces onto a shard slice (or vice versa), and slice
        ``1/3`` never coalesces onto slice ``2/3``.
        """
        done: Job | None = None
        slice_key = (request.shard_index, request.shard_of)
        for job in self._jobs.values():
            if job.compute_hash != compute_hash:
                continue
            if (job.request.shard_index,
                    job.request.shard_of) != slice_key:
                continue
            if job.state in ("queued", "running"):
                return job
            if job.state == "done" and (done is None
                                        or job.submitted_t > done.submitted_t):
                done = job
        return done

    def _retry_after(self) -> float:
        """``Retry-After`` estimate [s] from the recent job wall-time EMA."""
        estimate = self._ema_wall_s if self._ema_wall_s is not None else 5.0
        depth = len(self._pending) + sum(
            1 for job in self._jobs.values() if job.state == "running")
        return min(600.0, max(1.0, estimate * (depth + 1) / self.workers))

    # -- cancellation --------------------------------------------------------

    def cancel(self, job_id: str) -> tuple[Job, bool]:
        """Cancel a job on client request.

        A queued job transitions to ``"cancelled"`` immediately; a running
        job has its cancel hook armed and transitions when the runner
        checkpoints (completed shards stay persisted).

        Args:
            job_id: The job to cancel.

        Returns:
            ``(job, accepted)`` — ``accepted`` is False when the job was
            already terminal (HTTP 409).

        Raises:
            UnknownJobError: When no such job is known.
        """
        job = self.get(job_id)
        with self._cv:
            if job.state == "queued":
                try:
                    self._pending.remove(job.job)
                except ValueError:  # pragma: no cover - picked up racily
                    pass
                job.state = "cancelled"
                job.cancel_cause = "client"
                job.finished_t = time.time()
                self.jobstore.job_cancelled(job=job.job, was="queued")
                return job, True
            if job.state == "running":
                job.cancel_cause = "client"
                job.cancel_event.set()
                self.jobstore.job_cancelled(job=job.job, was="running")
                return job, True
            return job, False

    # -- results -------------------------------------------------------------

    def result(self, job_id: str) -> tuple[Job, dict | None]:
        """The job and its result document, when one exists.

        ``"done"``/``"partial"``/``"cancelled"`` jobs have a document
        (partial/cancelled ones contain exactly the completed shards);
        open and ``"failed"`` jobs return ``None``.  After a restart the
        document is rebuilt from the study store's shards — a read, not a
        recomputation — and is bit-identical to the pre-crash one.

        Raises:
            UnknownJobError: When no such job is known.
        """
        job = self.get(job_id)
        if job.state not in TERMINAL_STATES or job.state == "failed":
            return job, None
        if job.result is None and self.study_store is not None:
            job.result = self._rebuild_result(job)
        return job, job.result

    def _rebuild_result(self, job: Job) -> dict | None:
        """Reassemble a terminal job's document from stored shards."""
        request = job.request
        context = {}
        if request.backend is not None:
            context["backend"] = request.backend
        cancel = None if job.state == "done" else (lambda: True)
        try:
            spec = request.spec()
            # For complete jobs every shard is reused from the store; for
            # partial/cancelled jobs the immediate cancel stops the run
            # right after reuse, so only the completed shards appear.
            if request.shard_of is not None:
                slice_run = run_shard_slice(
                    spec, request.shard_index, request.shard_of,
                    self.study_store, shards=request.shards,
                    context=context, journal=RunJournal(None),
                    cancel=cancel)
                report = slice_run.report
                if report is None:  # empty slice — nothing to document
                    return None
            else:
                report = run_study(
                    spec, jobs=1, shards=request.shards,
                    store=self.study_store, context=context,
                    journal=RunJournal(None), cancel=cancel)
        except ReproError:
            return None
        return report.table.to_document(metadata=self._result_metadata(job))

    def _result_metadata(self, job: Job) -> dict:
        metadata = {"job": job.job, "state": job.state,
                    "compute_hash": job.compute_hash,
                    "backend": job.request.backend}
        if job.request.shard_of is not None:
            metadata["shard_index"] = job.request.shard_index
            metadata["shard_of"] = job.request.shard_of
        return metadata

    # -- execution -----------------------------------------------------------

    def recover(self) -> int:
        """Replay ``jobs.jsonl`` and re-enqueue every open job.

        Terminal jobs are reloaded for ``/jobs/{id}`` visibility (results
        rebuild lazily from the store); jobs that were queued or running
        when the previous process died re-enter the queue — with their
        original ids and absolute deadlines — and resume from whatever
        shards the store already holds.

        Returns:
            The number of re-enqueued jobs.
        """
        records, _ = self.jobstore.replay()
        requeued = 0
        with self._cv:
            for record in records.values():
                if record["job"] in self._jobs:
                    continue
                try:
                    request = JobRequest(
                        document=record["document"] or {},
                        client=str(record["client"] or "anonymous"),
                        **{key: record["options"].get(key)
                           for key in ("shards", "shard_timeout_s",
                                       "deadline_s", "backend",
                                       "shard_index", "shard_of")},
                        jobs=int(record["options"].get("jobs") or 1),
                        retries=int(record["options"].get("retries") or 0))
                    cases = request.spec().case_count
                except (ReproError, TypeError, ValueError):
                    continue  # a record the current code cannot rebuild
                job = Job(
                    job=record["job"], request=request,
                    compute_hash=record["compute_hash"] or "",
                    state=record["state"],
                    submitted_t=record["submitted_t"] or 0.0,
                    started_t=record["started_t"],
                    finished_t=record["finished_t"],
                    deadline_t=record["deadline_t"], cases=cases,
                    error=record["error"])
                self._jobs[job.job] = job
                if record["state"] in ("queued", "running"):
                    job.state = "queued"
                    job.started_t = None
                    self._pending.append(job.job)
                    self.jobstore.job_requeued(job=job.job)
                    requeued += 1
            self._cv.notify_all()
        return requeued

    def start(self) -> None:
        """Recover open jobs, spawn the worker threads, journal the start."""
        recovered = self.recover()
        self.jobstore.service_start(
            workers=self.workers, max_queue=self.max_queue,
            max_per_client=self.max_per_client, recovered=recovered)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"job-worker-{index}",
                daemon=True)
            thread.start()
            self._threads.append(thread)

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._stopped:
                    self._cv.wait(timeout=0.5)
                if self._stopped and not self._pending:
                    return
                job = self._jobs[self._pending.popleft()]
                if job.state != "queued":  # cancelled while waiting
                    continue
                job.state = "running"
                job.started_t = time.time()
            self.jobstore.job_started(job=job.job)
            self._execute(job)

    def _execute(self, job: Job) -> None:
        request = job.request
        spec = request.spec()
        effective_jobs = min(request.jobs, self.max_job_procs)
        context = {}
        if request.backend is not None:
            context["backend"] = request.backend

        def progress(done: int, total: int, label: str) -> None:
            with self._cv:
                job.progress_done = done
                job.progress_total = total

        def cancelled() -> bool:
            if job.cancel_event.is_set():
                return True
            return (job.deadline_t is not None
                    and time.time() >= job.deadline_t)

        journal: str | Path | RunJournal = RunJournal(None)
        if self.store_dir is not None:
            journal = self.store_dir / "runs" / f"{job.job}.jsonl"
        t0 = time.monotonic()
        try:
            if request.shard_of is not None:
                # Distributed slice: run only this worker's round-robin
                # subset and leave a signed manifest next to the shards
                # for a later `repro study merge`.
                slice_run = run_shard_slice(
                    spec, request.shard_index, request.shard_of,
                    self.study_store, jobs=effective_jobs,
                    shards=request.shards, context=context,
                    retries=request.retries,
                    shard_timeout=(request.shard_timeout_s
                                   if effective_jobs > 1 else None),
                    journal=journal, progress=progress, cancel=cancelled)
                report = slice_run.report
            else:
                report = run_study(
                    spec, jobs=effective_jobs, shards=request.shards,
                    store=self.study_store, progress=progress,
                    context=context, retries=request.retries,
                    shard_timeout=(request.shard_timeout_s
                                   if effective_jobs > 1 else None),
                    journal=journal, cancel=cancelled)
        except Exception as exc:
            self._finalize(job, "failed", error=repr(exc),
                           wall_s=time.monotonic() - t0)
            return
        if report is None:
            # An empty slice (more workers than shards): nothing to
            # compute, nothing to attest beyond the (empty) manifest.
            self._finalize(job, "done", error=None,
                           wall_s=time.monotonic() - t0, cases=0)
            return
        if job.cancel_cause == "client":
            state = "cancelled"
        elif report.partial:
            # Deadline expiry or drain checkpoint: completed shards are
            # persisted and retrievable — graceful degradation, not error.
            state = "partial"
        else:
            state = "done"
        job.result = report.table.to_document(
            metadata=self._result_metadata(job) | {"state": state})
        self._finalize(job, state, error=None,
                       wall_s=time.monotonic() - t0, cases=len(report.table))

    def _finalize(self, job: Job, state: str, error: str | None,
                  wall_s: float, cases: int | None = None) -> None:
        with self._cv:
            job.state = state
            job.error = error
            job.finished_t = time.time()
            if cases is not None:
                job.cases = cases
            ema = self._ema_wall_s
            self._ema_wall_s = (wall_s if ema is None
                                else 0.7 * ema + 0.3 * wall_s)
            self._prune()
            self._cv.notify_all()
        self.jobstore.job_finished(job=job.job, state=state,
                                   cases=job.cases, wall_s=wall_s,
                                   error=error)

    def _prune(self) -> None:
        """Drop the oldest terminal jobs beyond ``retain`` (lock held)."""
        terminal = [job for job in self._jobs.values()
                    if job.state in TERMINAL_STATES]
        if len(terminal) <= self.retain:
            return
        terminal.sort(key=lambda j: j.finished_t or j.submitted_t)
        for job in terminal[:len(terminal) - self.retain]:
            del self._jobs[job.job]

    # -- shutdown ------------------------------------------------------------

    def drain(self, grace_s: float = 30.0) -> bool:
        """Stop admissions, finish or checkpoint in-flight work, stop.

        Admissions are refused immediately; queued and running jobs get
        ``grace_s`` seconds to finish.  When the grace budget expires,
        running jobs are checkpointed (cancel hook → ``"partial"``, every
        completed shard persisted) and still-queued jobs are *left queued
        in the journal* so the next start re-enqueues them.

        Args:
            grace_s: Wall-clock budget for in-flight work [s].

        Returns:
            True when everything finished within the grace budget (a
            clean drain), False when work was checkpointed or left queued.
        """
        with self._cv:
            self._draining = True
            self._cv.notify_all()
        deadline = time.monotonic() + max(0.0, grace_s)
        while time.monotonic() < deadline:
            with self._cv:
                if not self._pending and not any(
                        job.state == "running"
                        for job in self._jobs.values()):
                    break
            time.sleep(_DRAIN_POLL_S)
        with self._cv:
            self._stopped = True
            leftover = list(self._pending)
            self._pending.clear()
            running = [job for job in self._jobs.values()
                       if job.state == "running"]
            for job in running:
                if job.cancel_cause is None:
                    job.cancel_cause = "drain"
                job.cancel_event.set()
            # Still-queued jobs stay "queued" in the journal: the next
            # start finds and re-enqueues them (crash-safe handover).
            self._cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=max(5.0, grace_s))
        with self._cv:
            open_jobs = sum(1 for job in self._jobs.values()
                            if job.state not in TERMINAL_STATES)
        drained = not leftover and not running and open_jobs == 0
        self.jobstore.service_stop(drained=drained, open=open_jobs)
        self.jobstore.close()
        return drained

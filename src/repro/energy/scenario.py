"""Segment-level energy accounting for the three operating policies of Fig. 4."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.corridor.layout import CorridorLayout
from repro.energy.duty import (
    EnergyParams,
    donor_average_power_w,
    hp_mast_average_power_w,
    lp_node_average_power_w,
)

__all__ = ["OperatingMode", "SegmentEnergy", "segment_energy"]


class OperatingMode(enum.Enum):
    """The three policies compared in Fig. 4.

    In every mode the HP RRHs use their sleep mode between trains ("always
    using energy-saving techniques", Fig. 4 caption); the modes differ in how
    the low-power repeater nodes are operated and powered.
    """

    CONTINUOUS = "continuous"   # repeaters always awake (full load / no load)
    SLEEP = "sleep"             # repeaters sleep between trains
    SOLAR = "solar"             # repeaters sleep AND are powered off-grid


@dataclass(frozen=True)
class SegmentEnergy:
    """Average mains power of one ISD segment, split by equipment class.

    All values are 24 h averages in watts.  ``service_w`` and ``donor_w`` are
    zero *mains* watts in SOLAR mode although the nodes still consume their
    sleep-mode average from the PV system (``offgrid_w`` reports it).
    """

    layout: CorridorLayout
    mode: OperatingMode
    hp_w: float
    service_w: float
    donor_w: float
    offgrid_w: float = 0.0

    @property
    def total_mains_w(self) -> float:
        """Average mains power of the segment."""
        return self.hp_w + self.service_w + self.donor_w

    @property
    def w_per_km(self) -> float:
        """Mains power normalized per kilometre of corridor.

        Equals the average energy consumption in Wh per hour per km — the
        quantity Fig. 4 plots.
        """
        return self.total_mains_w / (self.layout.isd_m / 1000.0)

    @property
    def wh_per_day_per_km(self) -> float:
        return self.w_per_km * 24.0

    @property
    def kwh_per_year_per_km(self) -> float:
        return self.w_per_km * 24.0 * 365.0 / 1000.0


def segment_energy(layout: CorridorLayout,
                   mode: OperatingMode = OperatingMode.SLEEP,
                   params: EnergyParams | None = None) -> SegmentEnergy:
    """Average power of one segment under an operating policy.

    One segment owns one HP mast (each mast is shared by two segments, and
    each segment has two mast-halves), its service nodes and donor nodes.
    """
    params = params or EnergyParams()
    hp_w = hp_mast_average_power_w(layout.isd_m, params, sleeping=True)

    sleeping = mode is not OperatingMode.CONTINUOUS
    service_each = lp_node_average_power_w(params, sleeping=sleeping)
    service_w = layout.n_repeaters * service_each
    donor_w = donor_average_power_w(layout, params, sleeping=sleeping)

    if mode is OperatingMode.SOLAR:
        return SegmentEnergy(layout=layout, mode=mode, hp_w=hp_w,
                             service_w=0.0, donor_w=0.0,
                             offgrid_w=service_w + donor_w)
    return SegmentEnergy(layout=layout, mode=mode, hp_w=hp_w,
                         service_w=service_w, donor_w=donor_w)

"""Corridor-level comparison — the Fig. 4 data series and headline savings."""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode, SegmentEnergy, segment_energy
from repro.errors import ConfigurationError

__all__ = [
    "conventional_reference_w_per_km",
    "savings_fraction",
    "fig4_rows",
    "Fig4Row",
    "CorridorComparison",
    "compare_deployments",
    "PolicyEnergy",
    "simulated_policy_comparison",
]


def conventional_reference_w_per_km(params: EnergyParams | None = None,
                                    isd_m: float = constants.CONVENTIONAL_ISD_M) -> float:
    """Average power per km of the conventional HP-only corridor (~467 W/km)."""
    layout = CorridorLayout.conventional(isd_m)
    return segment_energy(layout, OperatingMode.SLEEP, params).w_per_km


def savings_fraction(result: SegmentEnergy,
                     params: EnergyParams | None = None,
                     reference_w_per_km: float | None = None) -> float:
    """Energy saving of a deployment vs. the conventional corridor (0..1)."""
    ref = reference_w_per_km if reference_w_per_km is not None \
        else conventional_reference_w_per_km(params)
    if ref <= 0:
        raise ConfigurationError(f"reference power must be positive, got {ref}")
    return 1.0 - result.w_per_km / ref


@dataclass(frozen=True)
class Fig4Row:
    """One bar group of Fig. 4: a repeater count with its achievable ISD."""

    n_repeaters: int
    isd_m: float
    continuous_w_per_km: float
    sleep_w_per_km: float
    solar_w_per_km: float
    continuous_savings: float
    sleep_savings: float
    solar_savings: float


def fig4_rows(isd_by_n: dict[int, float] | None = None,
              params: EnergyParams | None = None,
              spacing_m: float = constants.LP_NODE_SPACING_M) -> list[Fig4Row]:
    """Compute the Fig. 4 series for a {repeater count: max ISD} mapping.

    Defaults to the paper's registered ISD list.  The conventional deployment
    is included as the ``n_repeaters=0`` row at 500 m ISD.
    """
    if isd_by_n is None:
        isd_by_n = {n + 1: isd for n, isd in enumerate(constants.PAPER_MAX_ISD_M)}
    params = params or EnergyParams()
    ref = conventional_reference_w_per_km(params)

    rows: list[Fig4Row] = []
    conventional = CorridorLayout.conventional()
    conv = segment_energy(conventional, OperatingMode.SLEEP, params).w_per_km
    rows.append(Fig4Row(0, constants.CONVENTIONAL_ISD_M, conv, conv, conv,
                        0.0, 0.0, 0.0))

    for n in sorted(isd_by_n):
        if n <= 0:
            raise ConfigurationError(f"repeater counts must be >= 1, got {n}")
        layout = CorridorLayout.with_uniform_repeaters(isd_by_n[n], n, spacing_m)
        per_mode = {
            mode: segment_energy(layout, mode, params)
            for mode in OperatingMode
        }
        rows.append(Fig4Row(
            n_repeaters=n,
            isd_m=isd_by_n[n],
            continuous_w_per_km=per_mode[OperatingMode.CONTINUOUS].w_per_km,
            sleep_w_per_km=per_mode[OperatingMode.SLEEP].w_per_km,
            solar_w_per_km=per_mode[OperatingMode.SOLAR].w_per_km,
            continuous_savings=1.0 - per_mode[OperatingMode.CONTINUOUS].w_per_km / ref,
            sleep_savings=1.0 - per_mode[OperatingMode.SLEEP].w_per_km / ref,
            solar_savings=1.0 - per_mode[OperatingMode.SOLAR].w_per_km / ref,
        ))
    return rows


@dataclass(frozen=True)
class CorridorComparison:
    """Corridor-length totals for a proposed deployment vs. the baseline."""

    corridor_km: float
    baseline_w_per_km: float
    proposed_w_per_km: float

    @property
    def savings_fraction(self) -> float:
        return 1.0 - self.proposed_w_per_km / self.baseline_w_per_km

    @property
    def baseline_mwh_per_year(self) -> float:
        return self.baseline_w_per_km * self.corridor_km * 24 * 365 / 1e6

    @property
    def proposed_mwh_per_year(self) -> float:
        return self.proposed_w_per_km * self.corridor_km * 24 * 365 / 1e6

    @property
    def saved_mwh_per_year(self) -> float:
        return self.baseline_mwh_per_year - self.proposed_mwh_per_year


def compare_deployments(layout: CorridorLayout,
                        mode: OperatingMode = OperatingMode.SLEEP,
                        corridor_km: float = 100.0,
                        params: EnergyParams | None = None) -> CorridorComparison:
    """Whole-corridor energy comparison against the conventional baseline."""
    if corridor_km <= 0:
        raise ConfigurationError(f"corridor length must be positive, got {corridor_km}")
    params = params or EnergyParams()
    return CorridorComparison(
        corridor_km=corridor_km,
        baseline_w_per_km=conventional_reference_w_per_km(params),
        proposed_w_per_km=segment_energy(layout, mode, params).w_per_km,
    )


@dataclass(frozen=True)
class PolicyEnergy:
    """Simulated vs. analytic energy of one operating policy.

    ``mean_w_per_km`` / ``std_w_per_km`` / ``ci95_w_per_km`` summarize the
    simulated realizations; ``analytic_w_per_km`` is the duty-cycle model and
    ``savings`` the fraction saved vs. the conventional corridor.
    """

    mode: OperatingMode
    realizations: int
    mean_w_per_km: float
    std_w_per_km: float
    ci95_w_per_km: tuple[float, float]
    analytic_w_per_km: float
    savings: float

    @property
    def simulated_minus_analytic_pct(self) -> float:
        """Bias of the simulation vs. the analytic model, in percent."""
        return 100.0 * (self.mean_w_per_km / self.analytic_w_per_km - 1.0)


def simulated_policy_comparison(layout: CorridorLayout,
                                params: EnergyParams | None = None,
                                realizations: int = 20,
                                stochastic: bool = True,
                                seed: int = 0,
                                engine: str = "batch",
                                ) -> dict[OperatingMode, PolicyEnergy]:
    """Sleep-policy energy comparison through the day-simulation engine.

    Simulates the three Fig. 4 operating policies over one shared fleet of
    timetable realizations — common random numbers across policies, so the
    simulated policy gap is free of timetable noise — and pairs each with its
    analytic duty-cycle figure and savings vs. the conventional corridor.
    """
    from repro.simulation.batch import simulate_days
    from repro.traffic.timetable import day_timetables, generate_timetable

    params = params or EnergyParams()
    if stochastic:
        timetables = day_timetables(params.traffic, realizations=realizations,
                                    seed=seed, segment_length_m=layout.isd_m)
    else:
        timetables = (generate_timetable(
            params.traffic, segment_length_m=layout.isd_m),) * max(1, realizations)
    ref = conventional_reference_w_per_km(params)

    comparison: dict[OperatingMode, PolicyEnergy] = {}
    for mode in OperatingMode:
        sim = simulate_days(layout, mode=mode, params=params,
                            timetables=timetables, engine=engine)
        analytic = segment_energy(layout, mode, params).w_per_km
        comparison[mode] = PolicyEnergy(
            mode=mode,
            realizations=sim.realizations,
            mean_w_per_km=sim.mean_w_per_km(),
            std_w_per_km=sim.std_w_per_km(),
            ci95_w_per_km=sim.ci95_w_per_km(),
            analytic_w_per_km=analytic,
            savings=1.0 - sim.mean_w_per_km() / ref,
        )
    return comparison

"""Analytic energy model — reproduces Fig. 4 and the Section V savings.

Combines the power profiles (:mod:`repro.power`), the traffic duty cycles
(:mod:`repro.traffic`) and the corridor geometry (:mod:`repro.corridor`) into
per-kilometre average power figures for the three operating policies the paper
compares: continuously powered repeaters, sleep-mode repeaters, and
solar-powered repeaters.
"""

from repro.energy.duty import (
    DonorDutyModel,
    EnergyParams,
    donor_average_power_w,
    hp_mast_average_power_w,
    lp_node_average_power_w,
)
from repro.energy.scenario import OperatingMode, SegmentEnergy, segment_energy
from repro.energy.analysis import (
    CorridorComparison,
    PolicyEnergy,
    compare_deployments,
    conventional_reference_w_per_km,
    fig4_rows,
    savings_fraction,
    simulated_policy_comparison,
)

__all__ = [
    "EnergyParams",
    "DonorDutyModel",
    "lp_node_average_power_w",
    "donor_average_power_w",
    "hp_mast_average_power_w",
    "OperatingMode",
    "SegmentEnergy",
    "segment_energy",
    "conventional_reference_w_per_km",
    "savings_fraction",
    "fig4_rows",
    "CorridorComparison",
    "compare_deployments",
    "PolicyEnergy",
    "simulated_policy_comparison",
]

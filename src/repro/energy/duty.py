"""Duty-cycle-based average power of the individual corridor elements.

Every element is modeled as a two-state machine driven by train passages: full
load while a train overlaps the element's coverage section, otherwise an
"inactive" state whose power depends on the operating policy (no-load power
for always-on equipment, sleep power for sleep-capable equipment).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.power.profiles import HP_RRH_PROFILE, LP_REPEATER_PROFILE, PowerProfile
from repro.traffic.occupancy import duty_cycle
from repro.traffic.trains import TrafficParams

__all__ = [
    "DonorDutyModel",
    "EnergyParams",
    "lp_node_average_power_w",
    "donor_average_power_w",
    "hp_mast_average_power_w",
]


class DonorDutyModel(enum.Enum):
    """How a donor node's active time is accounted.

    ``NODE``
        Donors behave like one more service node (the paper applies the same
        5.17 W average to every low-power node).
    ``SPAN``
        Donors are active while a train overlaps the union of their served
        nodes' sections — physically accurate for the fronthaul, slightly
        higher duty for large repeater counts.
    """

    NODE = "node"
    SPAN = "span"


@dataclass(frozen=True)
class EnergyParams:
    """Everything the analytic energy model needs (Table II + Table III)."""

    traffic: TrafficParams = field(default_factory=TrafficParams)
    hp_profile: PowerProfile = HP_RRH_PROFILE
    lp_profile: PowerProfile = LP_REPEATER_PROFILE
    #: Table III uses the published component totals rather than the EARTH fit.
    lp_full_w: float = constants.LP_REPEATER_FULL_LOAD_W       # 28.38 W
    lp_no_load_w: float = constants.LP_REPEATER_P0_W           # 24.26 W
    lp_sleep_w: float = constants.LP_REPEATER_PSLEEP_W         # 4.72 W
    lp_section_m: float = constants.LP_NODE_SPACING_M          # 200 m
    rrh_per_mast: int = constants.RRH_PER_MAST
    donor_duty: DonorDutyModel = DonorDutyModel.NODE

    def __post_init__(self) -> None:
        if self.lp_section_m <= 0:
            raise ConfigurationError(f"LP section must be positive, got {self.lp_section_m}")
        if self.rrh_per_mast < 1:
            raise ConfigurationError(f"need >= 1 RRH per mast, got {self.rrh_per_mast}")
        if not (0 <= self.lp_sleep_w <= self.lp_no_load_w <= self.lp_full_w):
            raise ConfigurationError(
                "expected lp sleep <= no-load <= full power, got "
                f"{self.lp_sleep_w}/{self.lp_no_load_w}/{self.lp_full_w}")


def lp_node_average_power_w(params: EnergyParams | None = None,
                            sleeping: bool = True,
                            section_m: float | None = None) -> float:
    """24 h-average power of one LP service node.

    With ``sleeping=True`` and paper defaults this is the quoted 5.17 W
    (124.1 Wh/day); with ``sleeping=False`` the node idles at no-load power
    between trains (~24.3 W average).
    """
    params = params or EnergyParams()
    section = params.lp_section_m if section_m is None else section_m
    chi = duty_cycle(section, params.traffic)
    inactive = params.lp_sleep_w if sleeping else params.lp_no_load_w
    return chi * params.lp_full_w + (1.0 - chi) * inactive


def donor_average_power_w(layout: CorridorLayout,
                          params: EnergyParams | None = None,
                          sleeping: bool = True) -> float:
    """24 h-average power of *all* donor nodes of a segment combined."""
    params = params or EnergyParams()
    n_donors = layout.n_donor_nodes
    if n_donors == 0:
        return 0.0
    if params.donor_duty is DonorDutyModel.NODE:
        return n_donors * lp_node_average_power_w(params, sleeping=sleeping)

    # SPAN model: split served nodes between the donors, active while a train
    # overlaps the served span (node sections inflate the span by one section).
    positions = layout.repeater_positions_m
    half = params.lp_section_m / 2.0
    n = len(positions)
    groups: list[tuple[float, ...]]
    if n_donors == 1:
        groups = [positions]
    else:
        split = (n + 1) // 2
        groups = [positions[:split], positions[split:]]
    total = 0.0
    inactive = params.lp_sleep_w if sleeping else params.lp_no_load_w
    for group in groups:
        if not group:
            continue
        span = (group[-1] + half) - (group[0] - half)
        chi = duty_cycle(span, params.traffic)
        total += chi * params.lp_full_w + (1.0 - chi) * inactive
    return total


def hp_mast_average_power_w(isd_m: float,
                            params: EnergyParams | None = None,
                            sleeping: bool = True) -> float:
    """24 h-average power of one HP mast (all its RRHs).

    Each RRH serves the full ISD-long coverage section of its mast and is at
    full load while a train is anywhere inside it — this reproduces the
    paper's 2.85 % (500 m) and 9.66 % (2650 m) full-load fractions.  With
    ``sleeping=False`` the RRHs idle at P0 instead of sleep power.
    """
    params = params or EnergyParams()
    if isd_m <= 0:
        raise ConfigurationError(f"ISD must be positive, got {isd_m}")
    chi = duty_cycle(isd_m, params.traffic)
    model = params.hp_profile.model
    inactive = model.p_sleep_w if sleeping else model.no_load_w
    per_rrh = chi * model.full_load_w + (1.0 - chi) * inactive
    return params.rrh_per_mast * per_rrh

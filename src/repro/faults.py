"""Deterministic fault injection for the supervised study runner.

A :class:`FaultPlan` is plain data — a list of :class:`FaultSpec` entries,
each naming the shard index, the attempt number and the failure mode to
inject — that crosses the process boundary inside the runner's worker
context and is executed *by the workers on themselves*.  The supervisor in
:mod:`repro.study.runner` never special-cases injected faults: a planned
``raise`` looks like an engine bug, a planned ``hang`` looks like a stuck
worker, a planned ``crash`` (``os._exit``) looks like the OOM killer, and a
planned ``corrupt`` tears a store file exactly the way a killed run would.
That is the point — the fault-injection test matrix
(``tests/test_faults.py``) drives the real recovery machinery and asserts
the recovered results are bit-identical to a clean run.

Supported actions (:data:`FAULT_ACTIONS`):

``raise``
    Raise :class:`FaultInjected` before the shard computes.
``hang``
    Sleep ``hang_s`` seconds (default far beyond any shard timeout), then
    raise :class:`FaultInjected` — exercises the supervisor's wall-clock
    timeout and pool rebuild.
``crash``
    Hard-kill the worker process via ``os._exit(exit_code)`` — no exception
    propagates, the pool breaks, and the supervisor must rebuild it.
``corrupt``
    Overwrite the shard's :class:`~repro.study.results.StudyStore` file with
    garbage bytes, then raise :class:`FaultInjected` — exercises the store's
    checksum/quarantine path and the atomic rewrite on retry.
``corrupt_manifest``
    Overwrite the file at the plan's ``manifest_path`` with a torn manifest
    document and let the attempt *continue normally* — a write-path fault,
    not a compute failure.  The damage surfaces later, when ``repro study
    merge`` signature-verifies the manifest
    (:exc:`~repro.errors.ManifestError` → exit 4), exercising the
    distributed layer's tamper/torn-write rejection end to end.

Every fault fires on exactly one ``(shard, attempt)`` pair, so a plan like
``FaultSpec(shard=1, attempt=1, action="crash")`` crashes the first attempt
of shard 1 and lets the retry succeed — deterministic chaos, reproducible
run to run.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, ReproError

__all__ = ["FAULT_ACTIONS", "FaultInjected", "FaultSpec", "FaultPlan",
           "load_fault_plan"]

#: The injectable failure modes, in escalating order of violence.
FAULT_ACTIONS = ("raise", "hang", "crash", "corrupt", "corrupt_manifest")

#: Context key the runner ships a serialized plan under.
CONTEXT_KEY = "fault_plan"


class FaultInjected(ReproError, RuntimeError):
    """An injected (planned) fault fired inside a worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *what* fails, *where* and *when*.

    Attributes
    ----------
    shard:
        Shard index (position in the run's shard layout) the fault targets.
    attempt:
        1-based attempt number at which the fault fires; later attempts of
        the same shard run clean unless another spec targets them.
    action:
        One of :data:`FAULT_ACTIONS`.
    hang_s:
        Sleep duration of the ``hang`` action (seconds).
    exit_code:
        Process exit status of the ``crash`` action.
    """

    shard: int
    attempt: int = 1
    action: str = "raise"
    hang_s: float = 3600.0
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {FAULT_ACTIONS}")
        if self.shard < 0:
            raise ConfigurationError(
                f"fault shard index must be >= 0, got {self.shard}")
        if self.attempt < 1:
            raise ConfigurationError(
                f"fault attempt must be >= 1, got {self.attempt}")
        if self.hang_s < 0:
            raise ConfigurationError(
                f"fault hang_s must be >= 0, got {self.hang_s}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of planned faults, executable by workers.

    The plan serializes to plain JSON-able data (:meth:`to_context`) so it
    can ride the runner's picklable worker context; workers rebuild it with
    :meth:`from_context` and call :meth:`execute` before evaluating a shard.

    Attributes
    ----------
    faults:
        The planned :class:`FaultSpec` entries.
    store_dir:
        Directory of the run's :class:`~repro.study.results.StudyStore` —
        required by (and only used for) ``corrupt`` faults, which need the
        on-disk shard path.
    manifest_path:
        File the ``corrupt_manifest`` action tears — typically another
        worker's (or a previous run's) shard manifest, so the merge's
        signature check is exercised against realistic torn-write damage.
    """

    faults: tuple[FaultSpec, ...] = ()
    store_dir: str | None = None
    manifest_path: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        if self.store_dir is None and any(f.action == "corrupt"
                                          for f in self.faults):
            raise ConfigurationError(
                "a 'corrupt' fault needs the plan's store_dir (the study "
                "store directory whose shard file it tears)")
        if self.manifest_path is None and any(
                f.action == "corrupt_manifest" for f in self.faults):
            raise ConfigurationError(
                "a 'corrupt_manifest' fault needs the plan's manifest_path "
                "(the manifest file it tears)")

    def find(self, shard: int, attempt: int) -> FaultSpec | None:
        """The planned fault for ``(shard, attempt)``, or ``None``."""
        for spec in self.faults:
            if spec.shard == shard and spec.attempt == attempt:
                return spec
        return None

    def execute(self, shard: int, attempt: int, *, study=None,
                start: int = 0, stop: int = 0) -> None:
        """Fire the planned fault for ``(shard, attempt)``, if any.

        Called by the worker itself at the top of a shard attempt.

        Args:
            shard: Shard index being attempted.
            attempt: 1-based attempt number.
            study: The :class:`~repro.study.spec.StudySpec` being run
                (needed by ``corrupt`` to derive the store file name).
            start: First case index of the shard (``corrupt`` key).
            stop: One-past-last case index of the shard (``corrupt`` key).

        Raises:
            FaultInjected: For ``raise``, ``hang`` (after sleeping) and
                ``corrupt`` (after tearing the file); ``crash`` never
                returns — the process exits.
        """
        spec = self.find(shard, attempt)
        if spec is None:
            return
        label = f"shard {shard} attempt {attempt}"
        if spec.action == "raise":
            raise FaultInjected(f"injected raise: {label}")
        if spec.action == "hang":
            time.sleep(spec.hang_s)
            raise FaultInjected(f"injected hang elapsed: {label}")
        if spec.action == "crash":
            os._exit(spec.exit_code)
        if spec.action == "corrupt_manifest":
            # Tear the targeted manifest the way a killed signer would —
            # valid JSON envelope, signature no longer matching — and let
            # the attempt continue: the damage is a write-path artifact
            # that only surfaces when a merge verifies the signature.
            path = Path(self.manifest_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text('{"manifest": {"study": "torn-by-fault-'
                            'injection"}, "signature": "0000"}\n')
            return
        # corrupt: tear the shard's store file the way a killed writer would
        # (truncated garbage), then fail the attempt; the retry recomputes
        # and the store's atomic replace repairs the file.
        from repro.study.results import StudyStore

        if study is None:
            raise ConfigurationError(
                "a 'corrupt' fault needs the study spec to locate its "
                "store file")
        key = StudyStore.shard_key(study, start, stop)
        path = Path(self.store_dir) / f"{key}.npz"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"PK\x03\x04torn-by-fault-injection")
        raise FaultInjected(f"injected store corruption: {label} ({path.name})")

    # -- context round trip ---------------------------------------------------

    def to_context(self) -> dict:
        """Serialize to the plain mapping shipped in the worker context."""
        return {
            "store_dir": self.store_dir,
            "manifest_path": self.manifest_path,
            "faults": [{"shard": f.shard, "attempt": f.attempt,
                        "action": f.action, "hang_s": f.hang_s,
                        "exit_code": f.exit_code} for f in self.faults],
        }

    @classmethod
    def from_mapping(cls, document: dict) -> "FaultPlan":
        """Build a validated plan from a parsed JSON/context mapping."""
        if not isinstance(document, dict):
            raise ConfigurationError(
                f"fault plan must be a mapping, got {type(document).__name__}")
        unknown = set(document) - {"faults", "store_dir", "manifest_path"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault-plan keys {sorted(unknown)}; "
                f"accepted: ['faults', 'manifest_path', 'store_dir']")
        entries = document.get("faults", [])
        if not isinstance(entries, (list, tuple)):
            raise ConfigurationError("fault plan 'faults' must be a list")
        faults = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"each fault must be a mapping, got {type(entry).__name__}")
            bad = set(entry) - {"shard", "attempt", "action", "hang_s",
                                "exit_code"}
            if bad:
                raise ConfigurationError(
                    f"unknown fault keys {sorted(bad)}")
            faults.append(FaultSpec(
                shard=int(entry.get("shard", -1)),
                attempt=int(entry.get("attempt", 1)),
                action=str(entry.get("action", "raise")),
                hang_s=float(entry.get("hang_s", 3600.0)),
                exit_code=int(entry.get("exit_code", 13)),
            ))
        store_dir = document.get("store_dir")
        manifest_path = document.get("manifest_path")
        return cls(
            faults=tuple(faults),
            store_dir=None if store_dir is None else str(store_dir),
            manifest_path=(None if manifest_path is None
                           else str(manifest_path)))

    @classmethod
    def from_context(cls, context: dict) -> "FaultPlan | None":
        """Rebuild the plan a runner shipped in ``context``, if any."""
        document = (context or {}).get(CONTEXT_KEY)
        if document is None:
            return None
        return cls.from_mapping(document)


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Load and validate a JSON fault-plan file.

    The document mirrors :meth:`FaultPlan.to_context`::

        {"store_dir": ".study",
         "faults": [{"shard": 1, "attempt": 1, "action": "crash"},
                    {"shard": 2, "attempt": 1, "action": "hang",
                     "hang_s": 600.0}]}

    Args:
        path: Path to the JSON document.

    Returns:
        The validated :class:`FaultPlan`.

    Raises:
        ConfigurationError: On unreadable files, invalid JSON or any
            schema violation.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read fault plan {str(path)!r}: {exc}")
    except ValueError as exc:
        raise ConfigurationError(
            f"fault plan {str(path)!r} is not valid JSON: {exc}")
    return FaultPlan.from_mapping(document)
